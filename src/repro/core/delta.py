"""Insert support via delta buffers (§8, "Data and Workload Shift").

Tsunami as published is read-only.  The paper sketches how insertions could be
supported: "each leaf node in the Grid Tree could maintain a sibling node that
acts as a delta index [39] in which updates are buffered and periodically
merged into the main node."  :class:`DeltaBufferedIndex` implements that idea
one level up, wrapping *any* clustered index in the repository:

* Inserted rows land in a :class:`DeltaBuffer` — a columnar, amortized-growth
  set of ``int64`` arrays in the same storage domain the main index uses.
  :meth:`DeltaBufferedIndex.insert_many` converts whole columns at once, so
  bulk ingestion is vectorized end to end.
* Queries are answered by combining the main index's result with a single
  columnar scan of the buffer, so reads always see every insert immediately.
* Once the buffer reaches ``merge_threshold`` rows (or on an explicit
  :meth:`merge` call), the buffered rows are folded into the table — the
  "periodic merge" of the differential-file technique the paper cites.  How
  the fold happens is controlled by ``merge_strategy``:

  * ``"local"`` (the default): when the wrapped index is a built
    :class:`~repro.core.tsunami.TsunamiIndex`, the merge routes buffered rows
    to their owning Grid Tree regions and reorganizes *only the touched
    regions* (see :mod:`repro.core.local_merge`) — regions whose pending-row
    fraction stays at or under ``split_threshold`` absorb the rows with an
    in-place re-sort of just their row range, overflowing (or previously
    empty) regions get a locally re-optimized grid.  Untouched regions keep
    their rows, grids, and plan caches, so sustained-insert cost scales with
    the rows that moved, not with the table.  Any other wrapped index falls
    back to the global rebuild below (recorded as ``strategy="rebuild"`` in
    the :class:`MergeReport`).
  * ``"rebuild"``: the original global path — concatenate the buffer onto
    the table and rebuild the whole wrapped index from scratch.  Kept as an
    escape hatch and as the differential-testing oracle: query results after
    any insert/merge interleaving are bit-identical between the two
    strategies.

The wrapper implements the full serving contract of
:class:`~repro.baselines.base.ClusteredIndex` — ``is_built`` / ``table`` /
``execute`` / ``execute_batch`` / ``execute_workload`` / ``explain`` /
``index_size_bytes`` / ``describe`` — so it can sit behind
:class:`~repro.query.engine.QueryEngine` and serve through the batched
pipeline at the same speed as a read-only index: a batch is deduped into
distinct templates, routed through the wrapped index's batched pipeline once,
the buffer is scanned once per distinct template, and the per-template results
are recombined per aggregate.  ``avg`` is recombined in a single pass: the
main index executes the corresponding ``sum`` query, whose scan already
counts the matching rows (``ScanStats.rows_matched``), so no second
count-query execution is needed and the reported scan work is conserved.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.baselines.base import (
    ClusteredIndex,
    PartialAggregate,
    QueryResult,
    avg_as_sum,
    combine_partial_results,
    dedupe_queries,
    expand_deduped_results,
    serve_workload,
)
from repro.common import faults
from repro.common.errors import IndexBuildError, QueryError, SchemaError
from repro.core.local_merge import (
    DEFAULT_SPLIT_THRESHOLD,
    local_merge,
    supports_local_merge,
)
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.column import Column
from repro.storage.kernels import fused_count, fused_max, fused_min, fused_sum
from repro.storage.scan import ScanStats
from repro.storage.table import Table

IndexFactory = Callable[[], ClusteredIndex]

#: Smallest per-column allocation of a :class:`DeltaBuffer`.
MIN_BUFFER_CAPACITY = 64


#: Valid values of ``DeltaBufferedIndex.merge_strategy``.
MERGE_STRATEGIES = ("local", "rebuild")


@dataclass
class MergeReport:
    """Outcome of folding the delta buffer into the main index.

    ``strategy`` records the path that actually ran (a ``"local"`` request
    falls back to ``"rebuild"`` when the wrapped index has no region layout);
    ``regions_touched`` / ``regions_total`` are filled by local merges only.
    ``rebuild_seconds`` keeps its historical name and times whichever
    reorganization ran.
    """

    rows_merged: int
    rebuild_seconds: float
    total_rows: int
    strategy: str = "rebuild"
    regions_touched: int | None = None
    regions_total: int | None = None


@dataclass(frozen=True)
class BufferScan:
    """Everything one query needs from a single pass over the delta buffer.

    All aggregate pieces are computed together so one scan per distinct
    template serves any aggregate: ``total`` feeds ``sum``/``avg``,
    ``matched`` feeds ``count``/``avg``, ``minimum``/``maximum`` (``NaN``
    when no buffered row matches) feed ``min``/``max``.
    """

    total: float
    minimum: float
    maximum: float
    matched: int
    stats: ScanStats


class DeltaBuffer:
    """A columnar insert buffer with amortized-growth ``int64`` storage.

    Values are appended into preallocated per-column arrays that double in
    capacity when full, so appends are amortized O(1) and queries scan the
    live prefix of each array directly — no per-query list→array conversion.
    """

    def __init__(self, column_names: Sequence[str], capacity: int = MIN_BUFFER_CAPACITY) -> None:
        names = list(column_names)
        if not names:
            raise SchemaError("DeltaBuffer needs at least one column")
        if len(set(names)) != len(names):
            raise SchemaError(f"DeltaBuffer has duplicate column names: {names}")
        self._names = names
        self._capacity = max(int(capacity), MIN_BUFFER_CAPACITY)
        self._size = 0
        self._data = {name: np.empty(self._capacity, dtype=np.int64) for name in names}

    # -- protocol ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return (
            f"DeltaBuffer(columns={self._names}, rows={self._size}, "
            f"capacity={self._capacity})"
        )

    @property
    def column_names(self) -> list[str]:
        """Buffered column names, in table order."""
        return list(self._names)

    @property
    def capacity(self) -> int:
        """Currently allocated rows per column (grows by doubling)."""
        return self._capacity

    def column(self, name: str) -> np.ndarray:
        """The buffered values of ``name`` (a view of the live prefix)."""
        try:
            return self._data[name][: self._size]
        except KeyError:
            raise SchemaError(
                f"delta buffer has no column {name!r}; available: {self._names}"
            ) from None

    # -- appends -----------------------------------------------------------------

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= self._capacity:
            return
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        for name, storage in self._data.items():
            grown = np.empty(capacity, dtype=np.int64)
            grown[: self._size] = storage[: self._size]
            self._data[name] = grown
        self._capacity = capacity

    def append(self, row: Mapping[str, int]) -> None:
        """Append one already-converted row of storage-domain integers."""
        self._ensure_capacity(1)
        position = self._size
        for name in self._names:
            self._data[name][position] = row[name]
        self._size += 1

    def append_many(self, columns: Mapping[str, np.ndarray]) -> int:
        """Append equal-length storage-domain arrays, one per column.

        This is the vectorized bulk path: a single slice assignment per
        column, with capacity grown at most once.  Returns the number of rows
        appended.
        """
        missing = [name for name in self._names if name not in columns]
        if missing:
            raise SchemaError(f"append_many is missing values for columns {missing}")
        arrays: dict[str, np.ndarray] = {}
        length: int | None = None
        for name in self._names:
            array = np.asarray(columns[name], dtype=np.int64)
            if array.ndim != 1:
                raise SchemaError(
                    f"append_many values for column {name!r} must be 1-dimensional"
                )
            if length is None:
                length = int(array.shape[0])
            elif int(array.shape[0]) != length:
                raise SchemaError(
                    f"append_many column lengths differ: {name!r} has "
                    f"{array.shape[0]} values, expected {length}"
                )
            arrays[name] = array
        if not length:
            return 0
        self._ensure_capacity(length)
        start = self._size
        for name in self._names:
            self._data[name][start : start + length] = arrays[name]
        self._size += length
        return length

    def clear(self) -> None:
        """Drop every buffered row and shrink back to the minimum allocation."""
        self._size = 0
        if self._capacity > MIN_BUFFER_CAPACITY:
            self._capacity = MIN_BUFFER_CAPACITY
            self._data = {
                name: np.empty(self._capacity, dtype=np.int64) for name in self._names
            }

    # -- scans --------------------------------------------------------------------

    def mask_for_filters(self, filters: Mapping[str, tuple[int, int]]) -> np.ndarray:
        """Boolean mask of buffered rows matching every ``{dim: (low, high)}``."""
        mask = np.ones(self._size, dtype=bool)
        for dim, (low, high) in filters.items():
            if dim not in self._data:
                raise QueryError(f"query filters unknown dimension {dim!r}")
            values = self._data[dim][: self._size]
            mask &= (values >= low) & (values <= high)
        return mask

    def scan(self, query: Query) -> BufferScan:
        """Evaluate ``query`` over the buffer in one pass (see :class:`BufferScan`).

        Aggregation goes through the fused kernels: the whole live prefix is
        reduced under the filter mask without materializing matching rows.
        The buffer is staging storage and stays ``int64``, so its scan
        counters charge 8 bytes per value read.
        """
        stats = ScanStats(dims_accessed=query.num_filtered_dimensions)
        if self._size == 0:
            return BufferScan(0.0, float("nan"), float("nan"), 0, stats)
        stats.points_scanned = self._size
        stats.cell_ranges = 1
        filters = query.filters()
        stats.values_scanned = self._size * len(filters)
        stats.bytes_scanned = 8 * stats.values_scanned
        mask = self.mask_for_filters(filters)
        matched = fused_count(mask)
        stats.rows_matched = matched
        if matched == 0 or query.aggregate == "count":
            return BufferScan(0.0, float("nan"), float("nan"), matched, stats)
        target = self._data[query.aggregate_column][: self._size]
        stats.values_scanned += self._size
        stats.bytes_scanned += 8 * self._size
        return BufferScan(
            total=float(fused_sum(target, mask)),
            minimum=float(fused_min(target, mask)),
            maximum=float(fused_max(target, mask)),
            matched=matched,
            stats=stats,
        )

    def size_bytes(self) -> int:
        """Logical footprint of the buffered values (8 bytes per live value)."""
        return 8 * self._size * len(self._names)


class DeltaBufferedIndex:
    """A clustered index plus an insert buffer that is periodically merged.

    Parameters
    ----------
    index_factory:
        Zero-argument callable producing a fresh instance of the wrapped
        index; used for the initial build and for every merge-triggered
        rebuild.
    merge_threshold:
        Number of buffered rows at which inserts trigger an automatic merge.
        ``0`` merges after every insert call; use a large value to manage
        merges manually via :meth:`merge`.
    merge_strategy:
        ``"local"`` (default) reorganizes only the Grid Tree regions whose
        rows changed when the wrapped index supports it, falling back to the
        global rebuild otherwise; ``"rebuild"`` always rebuilds the whole
        wrapped index (the pre-localized behavior, kept as an escape hatch
        and differential-testing oracle).
    split_threshold:
        Pending-row fraction above which a local merge re-optimizes a
        region's grid (a "local split") instead of absorbing the rows into
        its fitted grid.  Ignored by the rebuild strategy.
    """

    name = "delta-buffered"

    def __init__(
        self,
        index_factory: IndexFactory,
        merge_threshold: int = 10_000,
        *,
        merge_strategy: str = "local",
        split_threshold: float = DEFAULT_SPLIT_THRESHOLD,
    ) -> None:
        if merge_threshold < 0:
            raise ValueError(f"merge_threshold must be >= 0, got {merge_threshold}")
        if merge_strategy not in MERGE_STRATEGIES:
            raise ValueError(
                f"merge_strategy must be one of {MERGE_STRATEGIES}, "
                f"got {merge_strategy!r}"
            )
        if not 0 <= split_threshold:
            raise ValueError(
                f"split_threshold must be >= 0, got {split_threshold}"
            )
        self._index_factory = index_factory
        self.merge_threshold = merge_threshold
        self.merge_strategy = merge_strategy
        self.split_threshold = split_threshold
        self._index: ClusteredIndex | None = None
        self._workload: Workload | None = None
        self._buffer: DeltaBuffer | None = None
        self._merges: list[MergeReport] = []

    # -- build ----------------------------------------------------------------------

    def build(self, table: Table, workload: Workload | None = None) -> "DeltaBufferedIndex":
        """Build the wrapped index over ``table`` (optionally workload-optimized)."""
        self._index = self._index_factory()
        self._index.build(table, workload)
        self._workload = workload
        self._buffer = DeltaBuffer(table.column_names)
        return self

    def _require_built(self) -> ClusteredIndex:
        if self._index is None or not self._index.is_built:
            raise IndexBuildError("DeltaBufferedIndex has not been built yet")
        return self._index

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed (serving-contract parity)."""
        return self._index is not None and self._index.is_built

    @property
    def table(self) -> Table:
        """The main index's clustered table (pending inserts live in the buffer)."""
        return self._require_built().table

    # -- inserts ----------------------------------------------------------------------

    @property
    def base_index(self) -> ClusteredIndex:
        """The wrapped clustered index (rebuilt on every merge)."""
        return self._require_built()

    @property
    def buffer(self) -> DeltaBuffer:
        """The columnar insert buffer (reset on every merge)."""
        self._require_built()
        assert self._buffer is not None
        return self._buffer

    @property
    def workload(self) -> Workload | None:
        """The workload merges rebuild the main index for."""
        return self._workload

    @workload.setter
    def workload(self, workload: Workload | None) -> None:
        """Advance the rebuild workload (e.g. after drift-triggered re-optimization)."""
        self._workload = workload

    @property
    def num_pending(self) -> int:
        """Number of inserted rows not yet merged into the main index."""
        return len(self._buffer) if self._buffer is not None else 0

    @property
    def num_rows(self) -> int:
        """Total rows visible to queries (main table plus pending inserts)."""
        return self._require_built().table.num_rows + self.num_pending

    def _convert_value(self, column: Column, value: object) -> int:
        try:
            return int(column.to_storage(value))
        except (KeyError, ValueError, TypeError, SchemaError) as exc:
            raise SchemaError(
                f"value {value!r} cannot be stored in column {column.name!r}: {exc}"
            ) from exc

    def _maybe_merge(self) -> None:
        if self.num_pending and self.num_pending >= self.merge_threshold:
            self.merge()

    def insert(self, row: Mapping[str, object]) -> None:
        """Insert one row given as ``{column: user-facing value}``.

        Values are converted to the storage domain through each column's
        existing encoding; a categorical value not present in the column's
        dictionary is rejected (extending dictionaries online is out of scope
        for this extension and the paper's).
        """
        index = self._require_built()
        table = index.table
        missing = [name for name in table.column_names if name not in row]
        if missing:
            raise SchemaError(f"insert is missing values for columns {missing}")
        converted = {
            name: self._convert_value(table.column(name), row[name])
            for name in table.column_names
        }
        assert self._buffer is not None
        self._buffer.append(converted)
        self._maybe_merge()

    def insert_many(self, rows: Sequence[Mapping[str, object]]) -> None:
        """Insert several rows at once via the vectorized columnar path.

        All rows are schema-checked and converted column-by-column (one numpy
        conversion per column) before anything is buffered, then appended in
        merge-threshold-sized chunks so the automatic merge cadence matches a
        per-row insert loop.
        """
        rows = list(rows)
        if not rows:
            return
        index = self._require_built()
        table = index.table
        column_names = table.column_names
        columns: dict[str, np.ndarray] = {}
        for name in column_names:
            try:
                values = [row[name] for row in rows]
            except KeyError:
                position = next(i for i, row in enumerate(rows) if name not in row)
                missing = [c for c in column_names if c not in rows[position]]
                raise SchemaError(
                    f"insert is missing values for columns {missing}"
                ) from None
            columns[name] = table.column(name).to_storage_array(values)
        assert self._buffer is not None
        total = len(rows)
        offset = 0
        while offset < total:
            chunk = total - offset
            if self.merge_threshold > 0:
                room = self.merge_threshold - self.num_pending
                chunk = min(chunk, max(room, 1))
            self._buffer.append_many(
                {name: array[offset : offset + chunk] for name, array in columns.items()}
            )
            offset += chunk
            self._maybe_merge()

    # -- merging ----------------------------------------------------------------------

    def merge(self) -> MergeReport | None:
        """Fold every pending insert into the table via ``merge_strategy``.

        Returns the merge report, or ``None`` if the buffer was empty.  With
        ``merge_strategy="local"`` and a wrapped index that supports it, only
        the regions whose rows changed are reorganized (see
        :mod:`repro.core.local_merge`); otherwise the whole wrapped index is
        rebuilt.  Either way a merge that fails mid-way leaves the index
        serving the old table with the buffer intact.
        """
        index = self._require_built()
        assert self._buffer is not None
        pending = self.num_pending
        if pending == 0:
            return None
        faults.trigger("delta.merge")
        start = time.perf_counter()
        if self.merge_strategy == "local" and supports_local_merge(index):
            buffer_columns = {
                name: self._buffer.column(name)
                for name in index.table.column_names
            }
            outcome = local_merge(
                index, buffer_columns, split_threshold=self.split_threshold
            )
            report = MergeReport(
                rows_merged=pending,
                rebuild_seconds=time.perf_counter() - start,
                total_rows=index.table.num_rows,
                strategy="local",
                regions_touched=outcome.regions_touched,
                regions_total=outcome.regions_total,
            )
        else:
            report = self._rebuild_merge(index, start)
        self._buffer = DeltaBuffer(index.table.column_names)
        self._merges.append(report)
        return report

    def _rebuild_merge(self, index: ClusteredIndex, start: float) -> MergeReport:
        """The global path: concatenate the buffer and rebuild the index."""
        assert self._buffer is not None
        old_table = index.table
        columns = []
        for name in old_table.column_names:
            source = old_table.column(name)
            # Concatenating the (possibly narrow) main column with the int64
            # buffer promotes to int64; the Column constructor then narrows to
            # the smallest dtype covering the *merged* range.  An insert that
            # overflows the old narrow dtype therefore widens the column
            # instead of crashing or wrapping.
            merged_values = np.concatenate([source.values, self._buffer.column(name)])
            columns.append(
                Column(
                    name,
                    merged_values,
                    dictionary=source.dictionary,
                    scaler=source.scaler,
                )
            )
        merged_table = Table(old_table.name, columns)
        # Build the replacement fully before installing it: a rebuild that
        # fails (or is fault-injected) must leave the index serving the old
        # table with the buffer intact, not half-replaced.
        rebuilt = self._index_factory()
        rebuilt.build(merged_table, self._workload)
        self._index = rebuilt
        return MergeReport(
            rows_merged=len(self._buffer),
            rebuild_seconds=time.perf_counter() - start,
            total_rows=merged_table.num_rows,
            strategy="rebuild",
        )

    @property
    def merge_history(self) -> list[MergeReport]:
        """Every merge performed so far, in order."""
        return list(self._merges)

    # -- queries ----------------------------------------------------------------------

    @staticmethod
    def _main_query(query: Query) -> Query:
        """The query the main index executes in place of ``query``.

        ``avg`` runs the corresponding ``sum`` query (see
        :func:`~repro.baselines.base.avg_as_sum`) so the recombination gets
        the sum and the matched-row count from one main-index pass.
        """
        return avg_as_sum(query)

    @staticmethod
    def _buffer_partial(query: Query, scan: BufferScan) -> PartialAggregate:
        """The buffer scan's contribution as a recombinable partial."""
        if query.aggregate == "count":
            value: float = scan.matched
        elif query.aggregate in ("sum", "avg"):
            value = scan.total
        elif query.aggregate == "min":
            value = scan.minimum
        else:
            value = scan.maximum
        return PartialAggregate(value=value, matched=scan.matched, stats=scan.stats)

    def _combine(self, query: Query, main: QueryResult, scan: BufferScan) -> QueryResult:
        """Recombine the main index's result with the buffer scan, per aggregate."""
        # ``main`` executed the rewritten query (see _main_query), so for
        # ``avg`` its value is the main-side sum and its rows_matched the count.
        main_partial = PartialAggregate(
            value=main.value, matched=main.stats.rows_matched, stats=main.stats
        )
        return combine_partial_results(
            query.aggregate, [main_partial, self._buffer_partial(query, scan)]
        )

    def execute(self, query: Query) -> QueryResult:
        """Answer ``query`` over the main index plus the delta buffer."""
        index = self._require_built()
        assert self._buffer is not None
        scan = self._buffer.scan(query)
        main = index.execute(self._main_query(query))
        return self._combine(query, main, scan)

    def execute_batch(self, queries: Sequence[Query]) -> list[QueryResult]:
        """Answer a batch of queries through the wrapped index's batched pipeline.

        The batch is deduped into distinct templates; the main index plans and
        scans the whole batch once (sharing grid-tree routing, plan-cache
        lookups, column slices, and filter masks), the buffer is scanned once
        per distinct template, and the results are recombined per aggregate.
        Results are in input order and identical to per-query :meth:`execute`.
        """
        self._require_built()
        assert self._buffer is not None
        queries = list(queries)
        if not queries:
            return []
        distinct, order = dedupe_queries(queries)
        main_results = self._require_built().execute_batch(
            [self._main_query(query) for query in distinct]
        )
        combined = [
            self._combine(query, main, self._buffer.scan(query))
            for query, main in zip(distinct, main_results)
        ]
        return expand_deduped_results(combined, order)

    def execute_workload(self, workload: Workload) -> tuple[list[QueryResult], ScanStats]:
        """Execute every query in ``workload`` and return results plus total work."""
        return serve_workload(self, workload)

    # -- reporting --------------------------------------------------------------------

    def explain(self, query: Query) -> dict:
        """The wrapped index's plan for ``query``, extended with the buffer scan.

        Every pending insert is scanned (one extra contiguous "range"), so the
        row counts and scanned fraction include the buffer.
        """
        index = self._require_built()
        plan = dict(index.explain(query))
        pending = self.num_pending
        plan["index"] = f"{self.name}({plan['index']})"
        plan["pending_inserts"] = pending
        if pending:
            plan["cell_ranges"] += 1
            plan["rows_to_scan"] += pending
        plan["table_fraction_scanned"] = plan["rows_to_scan"] / max(self.num_rows, 1)
        plan["merge_strategy"] = self.merge_strategy
        if self._merges:
            last = self._merges[-1]
            plan["last_merge"] = {
                "strategy": last.strategy,
                "rows_merged": last.rows_merged,
                "regions_touched": last.regions_touched,
                "regions_total": last.regions_total,
            }
        return plan

    def index_size_bytes(self) -> int:
        """Main index size plus the delta buffer (8 bytes per buffered value)."""
        buffered = self._buffer.size_bytes() if self._buffer is not None else 0
        return self._require_built().index_size_bytes() + buffered

    def describe(self) -> dict:
        """Structural statistics of the wrapper and the current main index."""
        info = {
            "name": self.name,
            "pending_inserts": self.num_pending,
            "merge_threshold": self.merge_threshold,
            "merge_strategy": self.merge_strategy,
            "split_threshold": self.split_threshold,
            "num_merges": len(self._merges),
            "total_rows": self.num_rows,
            "base_index": self._require_built().describe(),
        }
        if self._merges:
            last = self._merges[-1]
            info["last_merge"] = {
                "strategy": last.strategy,
                "rows_merged": last.rows_merged,
                "regions_touched": last.regions_touched,
                "regions_total": last.regions_total,
            }
        return info
