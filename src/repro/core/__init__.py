"""Tsunami's core contribution: Grid Tree, Augmented Grid, and their optimizers.

The subpackage is organized to mirror the paper:

* :mod:`repro.core.skew` — query skew, the skew tree, and split selection (§4.2–4.3).
* :mod:`repro.core.query_types` — query-type clustering (§4.3.1).
* :mod:`repro.core.grid_tree` — the Grid Tree space-partitioning decision tree (§4).
* :mod:`repro.core.skeleton` — Augmented Grid skeletons and partitioning strategies (§5.2).
* :mod:`repro.core.augmented_grid` — the Augmented Grid itself (§5).
* :mod:`repro.core.cost_model` — the analytic query cost model (§5.3.1).
* :mod:`repro.core.optimizer` — Adaptive Gradient Descent and the alternatives
  compared in Fig. 12b (§5.3.2, §6.6).
* :mod:`repro.core.tsunami` — the end-to-end Tsunami index (§3).
* :mod:`repro.core.variants` — the ablation variants of Fig. 12a.

The extensions the paper sketches in §8 live here as well:

* :mod:`repro.core.drift` — workload-shift detection.
* :mod:`repro.core.outliers` — outlier-aware functional mappings.
* :mod:`repro.core.categorical` — co-access ordering of categorical dimensions.
* :mod:`repro.core.delta` — insert support via delta buffers.
* :mod:`repro.core.incremental` — incremental per-region re-optimization.
* :mod:`repro.core.lifecycle` — the serving loop tying inserts, drift
  detection, and incremental re-optimization together.
* :mod:`repro.core.sharding` — the scale-out serving layer fanning batches
  across independently optimized partitions.
"""

from repro.core.skeleton import (
    IndependentCDFStrategy,
    FunctionalMappingStrategy,
    ConditionalCDFStrategy,
    Skeleton,
)
from repro.core.cost_model import CostModel, QueryPlanFeatures
from repro.core.grid_tree import GridTree, GridTreeConfig
from repro.core.augmented_grid import AugmentedGrid, AugmentedGridConfig
from repro.core.optimizer import (
    AdaptiveGradientDescent,
    GradientDescentOnly,
    BlackBoxOptimizer,
    OptimizerResult,
)
from repro.core.tsunami import TsunamiIndex, TsunamiConfig
from repro.core.drift import WorkloadDriftDetector, DriftReport
from repro.core.outliers import OutlierBoundedMapping
from repro.core.categorical import CategoricalReordering, co_access_counts
from repro.core.delta import BufferScan, DeltaBuffer, DeltaBufferedIndex, MergeReport
from repro.core.incremental import IncrementalReoptimizer, IncrementalReport, RegionShift
from repro.core.sharding import ShardedIndex, balanced_cuts, scaled_tsunami_config
from repro.core.lifecycle import (
    LifecycleConfig,
    LifecycleEvent,
    LifecycleManager,
    LifecycleReport,
)

__all__ = [
    "IndependentCDFStrategy",
    "FunctionalMappingStrategy",
    "ConditionalCDFStrategy",
    "Skeleton",
    "CostModel",
    "QueryPlanFeatures",
    "GridTree",
    "GridTreeConfig",
    "AugmentedGrid",
    "AugmentedGridConfig",
    "AdaptiveGradientDescent",
    "GradientDescentOnly",
    "BlackBoxOptimizer",
    "OptimizerResult",
    "TsunamiIndex",
    "TsunamiConfig",
    "WorkloadDriftDetector",
    "DriftReport",
    "OutlierBoundedMapping",
    "CategoricalReordering",
    "co_access_counts",
    "DeltaBuffer",
    "BufferScan",
    "DeltaBufferedIndex",
    "MergeReport",
    "IncrementalReoptimizer",
    "IncrementalReport",
    "RegionShift",
    "ShardedIndex",
    "balanced_cuts",
    "scaled_tsunami_config",
    "LifecycleConfig",
    "LifecycleEvent",
    "LifecycleManager",
    "LifecycleReport",
]
