"""Ablation variants of Tsunami used in the Fig. 12a drill-down (§6.6).

* :class:`AugmentedGridOnlyIndex` — one Augmented Grid over the entire data
  space, no Grid Tree.  Shows how much correlation-awareness alone helps.
* :class:`GridTreeOnlyIndex` — the Grid Tree with a Flood-style independent
  grid (no functional mappings or conditional CDFs) inside every region.
  Shows how much skew reduction alone helps.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.tsunami import TsunamiConfig, TsunamiIndex


class AugmentedGridOnlyIndex(TsunamiIndex):
    """Tsunami without the Grid Tree: a single Augmented Grid over all data."""

    name = "augmented-grid-only"

    def __init__(self, config: TsunamiConfig | None = None) -> None:
        base = config or TsunamiConfig()
        super().__init__(replace(base, use_grid_tree=False, use_augmented_strategies=True))


class GridTreeOnlyIndex(TsunamiIndex):
    """Tsunami without correlation-aware grids: Flood inside each Grid Tree region."""

    name = "grid-tree-only"

    def __init__(self, config: TsunamiConfig | None = None) -> None:
        base = config or TsunamiConfig()
        super().__init__(replace(base, use_grid_tree=True, use_augmented_strategies=False))
