"""Query-type clustering (§4.3.1).

Queries are grouped into *types* with similar selectivity characteristics so
that query skew can be measured per type (skews of different types would
otherwise cancel out).  The procedure is exactly the paper's:

1. Queries filtering different sets of dimensions automatically belong to
   different types.
2. Within a group that filters the same ``d'`` dimensions, each query is
   embedded as the ``d'``-vector of its per-dimension filter selectivities.
3. DBSCAN with ``eps = 0.2`` clusters the embeddings; the number of clusters
   is determined automatically.

Every query receives a type label; DBSCAN noise points are folded into the
nearest cluster (or become singleton types when a group is all noise).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.common.rng import make_rng
from repro.query.query import Query
from repro.query.selectivity import selectivity_vector
from repro.query.workload import Workload
from repro.stats.clustering import assign_noise_to_clusters, dbscan
from repro.storage.table import Table

DEFAULT_EPS = 0.2
DEFAULT_MIN_SAMPLES = 4


def cluster_query_types(
    table: Table,
    workload: Workload,
    eps: float = DEFAULT_EPS,
    min_samples: int = DEFAULT_MIN_SAMPLES,
    sample_rows: int = 20_000,
    seed: int = 17,
) -> Workload:
    """Return a copy of ``workload`` with every query labelled by query type.

    Selectivity embeddings are computed against a row sample of ``table`` for
    efficiency; the clustering only needs selectivities to be approximately
    right, not exact.
    """
    if len(workload) == 0:
        return Workload([], name=workload.name)

    sample = table
    if table.num_rows > sample_rows:
        sample = table.sample_rows(sample_rows, make_rng(seed))

    # Step 1: group queries by the set of dimensions they filter.
    groups: dict[tuple[str, ...], list[tuple[int, Query]]] = {}
    for position, query in enumerate(workload):
        key = tuple(sorted(query.filtered_dimensions))
        groups.setdefault(key, []).append((position, query))

    labelled: list[Query | None] = [None] * len(workload)
    next_type_id = 0
    for key in sorted(groups):
        members = groups[key]
        if len(key) == 0:
            # Queries with no filter predicates form a single trivial type.
            for position, query in members:
                labelled[position] = query.with_type(next_type_id)
            next_type_id += 1
            continue

        # Step 2: embed each query as its per-dimension selectivity vector.
        embeddings = np.zeros((len(members), len(key)))
        for row, (_, query) in enumerate(members):
            vector = selectivity_vector(sample, query)
            embeddings[row] = [vector[dim] for dim in key]

        # Step 3: DBSCAN with eps=0.2 determines the clusters automatically.
        effective_min_samples = min(min_samples, max(1, len(members) // 2))
        labels = dbscan(embeddings, eps=eps, min_samples=effective_min_samples)
        labels = assign_noise_to_clusters(embeddings, labels)

        remapped: dict[int, int] = {}
        for (position, query), label in zip(members, labels):
            if int(label) not in remapped:
                remapped[int(label)] = next_type_id
                next_type_id += 1
            labelled[position] = query.with_type(remapped[int(label)])

    return Workload([q for q in labelled if q is not None], name=workload.name)


@dataclass
class PlanCacheStats:
    """Hit/miss accounting for one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def merge(self, other: "PlanCacheStats") -> "PlanCacheStats":
        """Accumulate another stats object into this one (in place)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        return self


class PlanCache:
    """An LRU cache of query plans keyed by query type + quantized bounds.

    Skewed workloads (§4) repeat a small set of query templates; two queries
    whose predicate bounds quantize to the same per-dimension *partition
    windows* visit exactly the same grid cells with the same exactness flags
    (the CDF models are monotone, so every partition strictly inside a window
    lies inside *any* filter range producing that window).  Caching the
    planned spans under ``(query_type, filtered dimensions, windows)`` is
    therefore lossless: a hit replays the identical plan, and scan-time
    filtering still uses the live query's exact bounds.

    The cache must be dropped whenever the physical layout changes (rebuild or
    :meth:`~repro.core.tsunami.TsunamiIndex.reoptimize`): cached spans are
    offsets into the clustered row order.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.stats = PlanCacheStats()
        self._entries: OrderedDict[tuple, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple):
        """Return the cached plan for ``key``, or ``None`` on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: tuple, plan) -> None:
        """Insert ``plan`` under ``key``, evicting the LRU entry when full."""
        self._entries[key] = plan
        self._entries.move_to_end(key)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry and reset the statistics (layout invalidation)."""
        self._entries.clear()
        self.stats = PlanCacheStats()


def queries_by_type(workload: Workload) -> dict[int, list[Query]]:
    """Group labelled queries by type id (unlabelled queries get type ``-1``)."""
    groups: dict[int, list[Query]] = {}
    for query in workload:
        type_id = query.query_type if query.query_type is not None else -1
        groups.setdefault(type_id, []).append(query)
    return groups
