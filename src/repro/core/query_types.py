"""Query-type clustering (§4.3.1).

Queries are grouped into *types* with similar selectivity characteristics so
that query skew can be measured per type (skews of different types would
otherwise cancel out).  The procedure is exactly the paper's:

1. Queries filtering different sets of dimensions automatically belong to
   different types.
2. Within a group that filters the same ``d'`` dimensions, each query is
   embedded as the ``d'``-vector of its per-dimension filter selectivities.
3. DBSCAN with ``eps = 0.2`` clusters the embeddings; the number of clusters
   is determined automatically.

Every query receives a type label; DBSCAN noise points are folded into the
nearest cluster (or become singleton types when a group is all noise).
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.query.query import Query
from repro.query.selectivity import selectivity_vector
from repro.query.workload import Workload
from repro.stats.clustering import assign_noise_to_clusters, dbscan
from repro.storage.table import Table

DEFAULT_EPS = 0.2
DEFAULT_MIN_SAMPLES = 4


def cluster_query_types(
    table: Table,
    workload: Workload,
    eps: float = DEFAULT_EPS,
    min_samples: int = DEFAULT_MIN_SAMPLES,
    sample_rows: int = 20_000,
    seed: int = 17,
) -> Workload:
    """Return a copy of ``workload`` with every query labelled by query type.

    Selectivity embeddings are computed against a row sample of ``table`` for
    efficiency; the clustering only needs selectivities to be approximately
    right, not exact.
    """
    if len(workload) == 0:
        return Workload([], name=workload.name)

    sample = table
    if table.num_rows > sample_rows:
        sample = table.sample_rows(sample_rows, make_rng(seed))

    # Step 1: group queries by the set of dimensions they filter.
    groups: dict[tuple[str, ...], list[tuple[int, Query]]] = {}
    for position, query in enumerate(workload):
        key = tuple(sorted(query.filtered_dimensions))
        groups.setdefault(key, []).append((position, query))

    labelled: list[Query | None] = [None] * len(workload)
    next_type_id = 0
    for key in sorted(groups):
        members = groups[key]
        if len(key) == 0:
            # Queries with no filter predicates form a single trivial type.
            for position, query in members:
                labelled[position] = query.with_type(next_type_id)
            next_type_id += 1
            continue

        # Step 2: embed each query as its per-dimension selectivity vector.
        embeddings = np.zeros((len(members), len(key)))
        for row, (_, query) in enumerate(members):
            vector = selectivity_vector(sample, query)
            embeddings[row] = [vector[dim] for dim in key]

        # Step 3: DBSCAN with eps=0.2 determines the clusters automatically.
        effective_min_samples = min(min_samples, max(1, len(members) // 2))
        labels = dbscan(embeddings, eps=eps, min_samples=effective_min_samples)
        labels = assign_noise_to_clusters(embeddings, labels)

        remapped: dict[int, int] = {}
        for (position, query), label in zip(members, labels):
            if int(label) not in remapped:
                remapped[int(label)] = next_type_id
                next_type_id += 1
            labelled[position] = query.with_type(remapped[int(label)])

    return Workload([q for q in labelled if q is not None], name=workload.name)


def queries_by_type(workload: Workload) -> dict[int, list[Query]]:
    """Group labelled queries by type id (unlabelled queries get type ``-1``)."""
    groups: dict[int, list[Query]] = {}
    for query in workload:
        type_id = query.query_type if query.query_type is not None else -1
        groups.setdefault(type_id, []).append(query)
    return groups
