"""Workload-aware ordering of categorical dimensions (§8, "Categorical dimensions").

Categorical values "typically have no semantically meaningful sort order, so
they are sorted alphanumerically by default.  However, we can improve
performance by imposing our own sort order ... values that are commonly
accessed together in the same query should ideally be placed in the same grid
partition, so that a query that accesses them needs to scan fewer partitions
and points."

This module implements that extension:

1. :func:`co_access_counts` tallies, for a dictionary-encoded column, how
   often each pair of values is touched by the same query.
2. :class:`CategoricalReordering` turns those counts into a new code order
   (a maximum-weight spanning tree over the co-access graph, linearised by a
   depth-first walk, with singleton values appended by access frequency), and
   knows how to

   * recode a :class:`~repro.storage.column.Column` in place (producing a new
     :class:`~repro.storage.table.Table` whose dictionary reflects the new
     order), and
   * rewrite query predicates expressed in the *old* code order so they remain
     correct in the new one.

Rewriting is exact for equality predicates.  A range predicate over a
reordered categorical dimension is rewritten to the smallest range of new
codes covering every old code in the original range, which preserves
correctness (the scan still checks the original filter) at the cost of
possibly scanning a few extra values.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.common.errors import SchemaError
from repro.query.predicates import EqualityPredicate, RangePredicate
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.column import Column
from repro.storage.dictionary import DictionaryEncoder
from repro.storage.table import Table


def co_access_counts(
    table: Table, dimension: str, workload: Workload
) -> tuple[np.ndarray, np.ndarray]:
    """Per-value access counts and pairwise co-access counts for ``dimension``.

    Returns ``(access, co_access)`` where ``access[c]`` is the number of
    queries whose filter over ``dimension`` includes code ``c`` and
    ``co_access[a, b]`` is the number of queries including both codes.
    Queries that do not filter ``dimension`` touch every value equally and
    contribute to neither count (they cannot be helped by reordering).
    """
    column = table.column(dimension)
    if column.dictionary is None:
        raise SchemaError(
            f"dimension {dimension!r} is not dictionary-encoded; co-access "
            "reordering only applies to categorical columns"
        )
    num_values = len(column.dictionary)
    access = np.zeros(num_values, dtype=np.int64)
    co_access = np.zeros((num_values, num_values), dtype=np.int64)
    for query in workload:
        predicate = query.predicate_for(dimension)
        if predicate is None:
            continue
        low = max(0, int(predicate.low))
        high = min(num_values - 1, int(predicate.high))
        if high < low:
            continue
        codes = np.arange(low, high + 1)
        access[codes] += 1
        if len(codes) > 1:
            co_access[np.ix_(codes, codes)] += 1
    np.fill_diagonal(co_access, 0)
    return access, co_access


@dataclass(frozen=True)
class CategoricalReordering:
    """A new ordering of a categorical dimension's dictionary codes.

    ``new_order[i]`` is the old code placed at new code ``i``;
    ``old_to_new[c]`` is the new code of old code ``c``.
    """

    dimension: str
    new_order: np.ndarray
    old_to_new: np.ndarray

    # -- construction ------------------------------------------------------------

    @classmethod
    def fit(
        cls, table: Table, dimension: str, workload: Workload
    ) -> "CategoricalReordering":
        """Derive the co-access ordering for ``dimension`` from ``workload``.

        The co-access graph's maximum-weight spanning forest is walked depth
        first so that strongly co-accessed values receive adjacent codes;
        values never co-accessed with anything are appended afterwards in
        decreasing access frequency (then old-code order for determinism).
        """
        access, co_access = co_access_counts(table, dimension, workload)
        num_values = access.size

        graph = nx.Graph()
        graph.add_nodes_from(range(num_values))
        rows, cols = np.nonzero(np.triu(co_access, k=1))
        for a, b in zip(rows.tolist(), cols.tolist()):
            graph.add_edge(a, b, weight=int(co_access[a, b]))

        ordered: list[int] = []
        seen: set[int] = set()
        # maximum_spanning_tree returns a spanning forest when the co-access
        # graph is disconnected (one tree per connected component).
        forest = nx.maximum_spanning_tree(graph, weight="weight")
        # Visit components in decreasing total access so hot value groups get
        # the lowest codes; within a component do a DFS from its hottest value.
        components = sorted(
            (list(component) for component in nx.connected_components(forest)),
            key=lambda nodes: (-int(access[nodes].sum()), min(nodes)),
        )
        for nodes in components:
            if len(nodes) == 1 and not graph.degree(nodes[0]):
                continue  # isolated values are appended by frequency below
            start = max(nodes, key=lambda node: (int(access[node]), -node))
            for node in nx.dfs_preorder_nodes(forest.subgraph(nodes), source=start):
                if node not in seen:
                    ordered.append(int(node))
                    seen.add(int(node))

        leftovers = [code for code in range(num_values) if code not in seen]
        leftovers.sort(key=lambda code: (-int(access[code]), code))
        ordered.extend(leftovers)

        new_order = np.asarray(ordered, dtype=np.int64)
        old_to_new = np.empty(num_values, dtype=np.int64)
        old_to_new[new_order] = np.arange(num_values)
        return cls(dimension=dimension, new_order=new_order, old_to_new=old_to_new)

    # -- application -------------------------------------------------------------

    @property
    def num_values(self) -> int:
        """Number of distinct categorical values."""
        return int(self.new_order.size)

    def is_identity(self) -> bool:
        """Whether the reordering leaves every code unchanged."""
        return bool(np.array_equal(self.new_order, np.arange(self.num_values)))

    def apply_to_table(self, table: Table) -> Table:
        """Return a new table whose ``dimension`` column uses the new code order.

        The column's dictionary is rebuilt so that user-facing string values
        round-trip exactly as before; only the integer codes (and therefore
        the physical clustering an index will impose) change.
        """
        old_column = table.column(self.dimension)
        if old_column.dictionary is None:
            raise SchemaError(f"dimension {self.dimension!r} is not dictionary-encoded")
        old_values = old_column.dictionary.values
        reordered_values = [old_values[int(code)] for code in self.new_order]
        new_dictionary = DictionaryEncoder.from_ordered_values(reordered_values)
        recoded = self.old_to_new[old_column.values]
        columns = []
        for name in table.column_names:
            if name == self.dimension:
                columns.append(Column(name, recoded, dictionary=new_dictionary))
            else:
                source = table.column(name)
                columns.append(
                    Column(
                        name,
                        np.array(source.values, copy=True),
                        dictionary=source.dictionary,
                        scaler=source.scaler,
                    )
                )
        return Table(table.name, columns)

    def rewrite_query(self, query: Query) -> Query:
        """Rewrite a query whose predicates use the *old* code order.

        Equality predicates map exactly; range predicates are widened to the
        smallest new-code range covering every old code in the original range.
        Queries that do not filter the reordered dimension are returned as-is.
        """
        predicate = query.predicate_for(self.dimension)
        if predicate is None:
            return query
        new_predicates = []
        for existing in query.predicates:
            if existing.dimension != self.dimension:
                new_predicates.append(existing)
                continue
            if isinstance(existing, EqualityPredicate):
                new_predicates.append(
                    EqualityPredicate(self.dimension, int(self.old_to_new[existing.value]))
                )
                continue
            low = max(0, int(existing.low))
            high = min(self.num_values - 1, int(existing.high))
            if high < low:
                new_predicates.append(existing)
                continue
            covered = self.old_to_new[low : high + 1]
            new_predicates.append(
                RangePredicate(self.dimension, int(covered.min()), int(covered.max()))
            )
        return Query(
            predicates=tuple(new_predicates),
            aggregate=query.aggregate,
            aggregate_column=query.aggregate_column,
            query_type=query.query_type,
        )

    def rewrite_workload(self, workload: Workload) -> Workload:
        """Rewrite every query in ``workload`` (see :meth:`rewrite_query`)."""
        return Workload(
            [self.rewrite_query(query) for query in workload],
            name=f"{workload.name}_reordered",
        )

    def describe(self) -> dict:
        """Summary statistics for reports and ablation benchmarks."""
        moved = int(np.count_nonzero(self.new_order != np.arange(self.num_values)))
        return {
            "dimension": self.dimension,
            "num_values": self.num_values,
            "values_moved": moved,
            "identity": self.is_identity(),
        }
