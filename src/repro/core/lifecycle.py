"""The serving lifecycle of an updatable index (§8, tied into one loop).

The §8 extensions each solve one piece of keeping a learned index healthy
under a live workload: :class:`~repro.core.delta.DeltaBufferedIndex` absorbs
inserts, :class:`~repro.core.drift.WorkloadDriftDetector` notices when the
query distribution has moved, and
:class:`~repro.core.incremental.IncrementalReoptimizer` repairs the layout
where it moved.  :class:`LifecycleManager` ties them into one loop:

* **Serve.**  Queries go through the wrapped index's batched pipeline
  (:meth:`LifecycleManager.run_batch` → ``DeltaBufferedIndex.execute_batch``)
  and are simultaneously *observed* into a sliding window.
* **Drift.**  Every ``observe_window`` observed queries, the window is handed
  to the drift detector.  On drift, pending inserts are merged first (so the
  re-optimized layout covers them), then the most-shifted regions are
  incrementally re-optimized for the window's queries, the detector is
  re-fitted, and the delta index's rebuild workload is advanced so later
  merges rebuild for the workload actually being served.
* **Pressure.**  Inserts that push the buffer past ``merge_pressure`` (a
  fraction of the main table) trigger a merge even before the wrapper's own
  absolute ``merge_threshold`` does.

Everything the loop does is recorded in a :class:`LifecycleReport` (counters
plus an ordered :class:`LifecycleEvent` log) that the benchmarks serialize via
:meth:`LifecycleReport.as_dict`, and every event is also pushed to listeners
registered via :meth:`LifecycleManager.subscribe` — that is how the serving
front-end's result cache learns that a merge or reoptimization it did not
initiate (buffer pressure, drift) made its entries stale.

Maintenance degrades gracefully: a merge or re-optimization that fails (for
real, or through an injected fault at the ``delta.merge`` /
``lifecycle.reoptimize`` sites) is recorded as a ``maintenance_error`` event
and serving continues on the current layout — the failed action retries the
next time its trigger fires.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.baselines.base import QueryResult
from repro.common import faults
from repro.common.errors import IndexBuildError
from repro.core.delta import DeltaBufferedIndex
from repro.core.drift import WorkloadDriftDetector
from repro.core.incremental import IncrementalReoptimizer
from repro.core.tsunami import TsunamiIndex
from repro.query.query import Query
from repro.query.workload import Workload

ReoptimizerFactory = Callable[[TsunamiIndex], IncrementalReoptimizer]


@dataclass(frozen=True)
class LifecycleConfig:
    """Knobs of the serving loop.

    Parameters
    ----------
    observe_window:
        Number of observed queries per drift-detection window.
    merge_pressure:
        Pending-insert fraction of the main table's rows at which inserts
        trigger a merge (``None`` disables pressure-based merging and leaves
        merging to the delta index's absolute ``merge_threshold``).
    reoptimize_on_drift:
        Whether detected drift triggers incremental re-optimization (requires
        the wrapped base index to be a :class:`TsunamiIndex`); when off (or
        unsupported) drift is still detected and recorded.
    """

    observe_window: int = 256
    merge_pressure: float | None = 0.10
    reoptimize_on_drift: bool = True

    def __post_init__(self) -> None:
        if self.observe_window < 1:
            raise ValueError(f"observe_window must be >= 1, got {self.observe_window}")
        if self.merge_pressure is not None and self.merge_pressure <= 0:
            raise ValueError(
                f"merge_pressure must be positive or None, got {self.merge_pressure}"
            )


@dataclass(frozen=True)
class LifecycleEvent:
    """One maintenance action (or detection) taken by the loop."""

    kind: str  # "drift" | "merge" | "reoptimize" | "maintenance_error"
    at_query: int  # queries served when the event fired
    seconds: float
    details: dict


@dataclass
class LifecycleReport:
    """Running totals of everything the lifecycle loop has done."""

    queries_served: int = 0
    batches_served: int = 0
    rows_inserted: int = 0
    windows_observed: int = 0
    drifts_detected: int = 0
    merges: int = 0
    local_merges: int = 0
    rows_merged: int = 0
    merge_regions_touched: int = 0
    merge_regions_total: int = 0
    reoptimizations: int = 0
    regions_reoptimized: int = 0
    maintenance_failures: int = 0
    maintenance_seconds: float = 0.0
    events: list[LifecycleEvent] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-serializable summary for the benchmark reports."""
        return {
            "queries_served": self.queries_served,
            "batches_served": self.batches_served,
            "rows_inserted": self.rows_inserted,
            "windows_observed": self.windows_observed,
            "drifts_detected": self.drifts_detected,
            "merges": self.merges,
            "local_merges": self.local_merges,
            "rows_merged": self.rows_merged,
            "merge_regions_touched": self.merge_regions_touched,
            "merge_regions_total": self.merge_regions_total,
            "reoptimizations": self.reoptimizations,
            "regions_reoptimized": self.regions_reoptimized,
            "maintenance_failures": self.maintenance_failures,
            "maintenance_seconds": round(self.maintenance_seconds, 6),
            "events": [
                {
                    "kind": event.kind,
                    "at_query": event.at_query,
                    "seconds": round(event.seconds, 6),
                    **event.details,
                }
                for event in self.events
            ],
        }


class LifecycleManager:
    """Serves an updatable index while keeping it merged and re-optimized.

    Parameters
    ----------
    index:
        A built :class:`DeltaBufferedIndex`.
    config:
        Loop thresholds (see :class:`LifecycleConfig`).
    detector:
        A fitted :class:`WorkloadDriftDetector`; by default one is fitted on
        the base index's recorded workload (drift detection is disabled when
        no workload is available to fit on).
    reoptimizer_factory:
        Builds the :class:`IncrementalReoptimizer` used after drift.  A
        factory rather than an instance because every merge rebuilds the base
        index, so the re-optimizer must bind to the *current* base index.
    """

    def __init__(
        self,
        index: DeltaBufferedIndex,
        config: LifecycleConfig | None = None,
        detector: WorkloadDriftDetector | None = None,
        reoptimizer_factory: ReoptimizerFactory | None = None,
    ) -> None:
        if not index.is_built:
            raise IndexBuildError("LifecycleManager requires a built DeltaBufferedIndex")
        self.index = index
        self.config = config or LifecycleConfig()
        self._reoptimizer_factory = reoptimizer_factory or (
            lambda base: IncrementalReoptimizer(base)
        )
        self._report = LifecycleReport()
        self._window: list[Query] = []
        self._listeners: list[Callable[[LifecycleEvent], None]] = []
        self._detector = detector if detector is not None else self._fit_detector()

    def _fit_detector(self) -> WorkloadDriftDetector | None:
        base = self.index.base_index
        workload = getattr(base, "typed_workload", None) or self.index.workload
        if workload is None or len(workload) == 0:
            return None
        return WorkloadDriftDetector().fit(base.table, workload)

    # -- serving ----------------------------------------------------------------------

    @property
    def detector(self) -> WorkloadDriftDetector | None:
        """The drift detector currently observing the workload (if any)."""
        return self._detector

    def run(self, query: Query) -> QueryResult:
        """Answer one query and observe it."""
        result = self.index.execute(query)
        self._report.queries_served += 1
        self._observe([query])
        return result

    def run_batch(self, queries: Sequence[Query]) -> list[QueryResult]:
        """Answer a batch through the batched pipeline and observe it."""
        queries = list(queries)
        results = self.index.execute_batch(queries)
        self._report.queries_served += len(queries)
        self._report.batches_served += 1
        self._observe(queries)
        return results

    def observe(self, queries: Sequence[Query]) -> None:
        """Feed queries into drift observation without executing them.

        Serving layers that answer queries from a result cache call this for
        their cache hits: the query never reaches :meth:`run_batch`, but the
        drift detector must still see it, or a hot set served mostly from
        cache could drift away unnoticed.  Cheap (no index execution) and
        subject to the same windowing — a full window may trigger the same
        maintenance a served window would.
        """
        queries = list(queries)
        if queries:
            self._observe(queries)

    def insert(self, row) -> None:
        """Insert one row, merging if buffer pressure demands it."""
        self.index.insert(row)
        self._report.rows_inserted += 1
        self._check_pressure()

    def insert_many(self, rows: Sequence) -> None:
        """Insert several rows, merging if buffer pressure demands it."""
        rows = list(rows)
        self.index.insert_many(rows)
        self._report.rows_inserted += len(rows)
        self._check_pressure()

    # -- the loop -----------------------------------------------------------------------

    def _check_pressure(self) -> None:
        pressure = self.config.merge_pressure
        if pressure is None or self.index.num_pending == 0:
            return
        main_rows = max(self.index.table.num_rows, 1)
        if self.index.num_pending / main_rows >= pressure:
            self._merge(trigger="pressure")

    def _maintenance_failed(
        self, operation: str, trigger: str, error: BaseException, seconds: float
    ) -> None:
        """Record a failed maintenance action and keep serving.

        Maintenance (merge, reoptimize) is an optimization, not a
        correctness requirement: the delta buffer keeps absorbing inserts and
        the current layout keeps answering queries, so a failed action is
        recorded as a ``maintenance_error`` event (listeners see it too) and
        retried naturally the next time its trigger fires.
        """
        self._report.maintenance_failures += 1
        self._report.maintenance_seconds += seconds
        self._record(
            "maintenance_error",
            seconds,
            {"operation": operation, "trigger": trigger, "error": repr(error)},
        )

    def _merge(self, trigger: str) -> bool:
        """Merge pending inserts; ``False`` only when the merge *failed*."""
        start = time.perf_counter()
        try:
            report = self.index.merge()
        except Exception as exc:
            self._maintenance_failed("merge", trigger, exc, time.perf_counter() - start)
            return False
        seconds = time.perf_counter() - start
        if report is None:
            return True
        self._report.merges += 1
        self._report.rows_merged += report.rows_merged
        self._report.maintenance_seconds += seconds
        # Thread the MergeReport through so scenario reports show per-merge
        # cost over time: which strategy ran, how long the reorganization
        # took, and — for local merges — how localized it actually was.
        details = {
            "trigger": trigger,
            "rows_merged": report.rows_merged,
            "total_rows": report.total_rows,
            "strategy": report.strategy,
            "merge_seconds": round(report.rebuild_seconds, 6),
        }
        if report.strategy == "local":
            self._report.local_merges += 1
        if report.regions_touched is not None:
            details["regions_touched"] = report.regions_touched
            details["regions_total"] = report.regions_total
            self._report.merge_regions_touched += report.regions_touched
            self._report.merge_regions_total += report.regions_total or 0
        self._record("merge", seconds, details)
        if self._detector is not None:
            # The merge replaced the table the detector sampled selectivities
            # from; resample against the data now being served (keeping the
            # same workload baseline) so verdicts don't drift from reality and
            # the superseded table isn't pinned in memory.
            base = self.index.base_index
            workload = getattr(base, "typed_workload", None) or self.index.workload
            if workload is not None and len(workload) > 0:
                self._detector = self._detector.refit(workload, base.table)
        return True

    def _observe(self, queries: Sequence[Query]) -> None:
        if self._detector is None:
            return
        self._window.extend(queries)
        while len(self._window) >= self.config.observe_window:
            window = self._window[: self.config.observe_window]
            del self._window[: self.config.observe_window]
            self._evaluate_window(window)

    def _evaluate_window(self, window: list[Query]) -> None:
        assert self._detector is not None
        self._report.windows_observed += 1
        drift = self._detector.observe(window)
        if not drift.drifted:
            return
        self._report.drifts_detected += 1
        self._record("drift", 0.0, {"reasons": list(drift.reasons)})
        if not self.config.reoptimize_on_drift:
            return
        base = self.index.base_index
        if not isinstance(base, TsunamiIndex):
            return
        # Fold pending inserts in first so the repaired layout covers them; a
        # failed merge skips this window's re-optimization (the layout would
        # not cover the still-pending rows) and serving carries on.
        if not self._merge(trigger="drift"):
            return
        base = self.index.base_index  # the merge may have rebuilt it
        if not isinstance(base, TsunamiIndex):
            return
        observed = Workload(window, name="observed")
        start = time.perf_counter()
        try:
            faults.trigger("lifecycle.reoptimize")
            report = self._reoptimizer_factory(base).reoptimize(observed)
        except Exception as exc:
            self._maintenance_failed(
                "reoptimize", "drift", exc, time.perf_counter() - start
            )
            return
        seconds = time.perf_counter() - start
        self._report.reoptimizations += 1
        self._report.regions_reoptimized += len(report.regions_reoptimized)
        self._report.maintenance_seconds += seconds
        self._record(
            "reoptimize",
            seconds,
            {
                "regions_reoptimized": list(report.regions_reoptimized),
                "regions_considered": report.regions_considered,
            },
        )
        if report.regions_reoptimized:
            # Advance the baselines: later merges rebuild for the observed
            # workload, and the detector compares against what is now served.
            self.index.workload = base.typed_workload or observed
            self._detector = self._detector.refit(base.typed_workload or observed, base.table)

    # -- event listeners ----------------------------------------------------------------

    def subscribe(self, listener: Callable[[LifecycleEvent], None]) -> None:
        """Register ``listener`` to be called with every :class:`LifecycleEvent`.

        Listeners fire synchronously, on whichever thread triggered the
        maintenance (a serving call or an insert), immediately after the
        event is recorded — so a result cache invalidating in its listener is
        clear before the triggering call returns.  The same listener is only
        registered once.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[LifecycleEvent], None]) -> None:
        """Remove ``listener``; unknown listeners are ignored."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _record(self, kind: str, seconds: float, details: dict) -> None:
        event = LifecycleEvent(
            kind=kind,
            at_query=self._report.queries_served,
            seconds=seconds,
            details=details,
        )
        self._report.events.append(event)
        for listener in list(self._listeners):
            listener(event)

    def tick(self) -> list[LifecycleEvent]:
        """Run one maintenance pass now, regardless of thresholds.

        Checks buffer pressure and evaluates whatever partial window has
        accumulated; returns the events the pass produced.
        """
        before = len(self._report.events)
        self._check_pressure()
        if self._detector is not None and self._window:
            window = list(self._window)
            self._window.clear()
            self._evaluate_window(window)
        return self._report.events[before:]

    def report(self) -> LifecycleReport:
        """The running lifecycle report (live object, not a copy)."""
        return self._report
