"""Z-order (Morton order) index with paged min/max metadata (§6.1 baseline 2).

Points are ordered by their Z-value — the bit-interleaving of fixed-width
per-dimension keys — and contiguous chunks are grouped into pages.  Each page
keeps min/max metadata per dimension.  A query computes the smallest and
largest Z-value contained in its rectangle and iterates over the pages whose
Z-range intersects that interval, using the min/max metadata to skip pages
that cannot contain matching points.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ClusteredIndex, containment_exactness
from repro.common.errors import IndexBuildError
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.scan import RowRange
from repro.storage.table import Table

_MAX_TOTAL_BITS = 63


class ZOrderIndex(ClusteredIndex):
    """Clusters the table in Morton order and prunes pages by Z-range and min/max."""

    name = "z-order"

    def __init__(self, page_size: int = 1024, dimensions: list[str] | None = None) -> None:
        super().__init__()
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        self.page_size = page_size
        self._requested_dimensions = dimensions
        self.dimensions: list[str] = []
        self.bits_per_dimension = 0
        self._domain_low: np.ndarray | None = None
        self._domain_width: np.ndarray | None = None
        self._zvalues: np.ndarray | None = None
        self._page_bounds: list[dict[str, tuple[int, int]]] = []
        self._page_z_ranges: np.ndarray | None = None
        self._page_rows: list[tuple[int, int]] = []

    # -- build -------------------------------------------------------------------

    def _optimize(self, table: Table, workload: Workload | None) -> None:
        if self._requested_dimensions is not None:
            missing = [d for d in self._requested_dimensions if d not in table]
            if missing:
                raise IndexBuildError(f"unknown Z-order dimensions: {missing}")
            self.dimensions = list(self._requested_dimensions)
        elif workload is not None and len(workload) > 0:
            self.dimensions = list(workload.filtered_dimensions())
        else:
            self.dimensions = list(table.column_names)
        if not self.dimensions:
            self.dimensions = list(table.column_names)
        d = len(self.dimensions)
        self.bits_per_dimension = max(1, min(16, _MAX_TOTAL_BITS // d))

    def _normalized_keys(self, table: Table) -> np.ndarray:
        """Map each row to per-dimension integer keys of ``bits_per_dimension`` bits."""
        assert self._domain_low is not None and self._domain_width is not None
        key_max = (1 << self.bits_per_dimension) - 1
        keys = np.empty((table.num_rows, len(self.dimensions)), dtype=np.uint64)
        for i, dim in enumerate(self.dimensions):
            values = table.values(dim).astype(np.float64)
            normalized = (values - self._domain_low[i]) / self._domain_width[i]
            keys[:, i] = np.clip(normalized * key_max, 0, key_max).astype(np.uint64)
        return keys

    def _interleave(self, keys: np.ndarray) -> np.ndarray:
        """Bit-interleave per-dimension keys into Morton codes (vectorized)."""
        d = keys.shape[1]
        z = np.zeros(keys.shape[0], dtype=np.uint64)
        for bit in range(self.bits_per_dimension):
            for dim in range(d):
                bit_values = (keys[:, dim] >> np.uint64(bit)) & np.uint64(1)
                z |= bit_values << np.uint64(bit * d + dim)
        return z

    def _point_z(self, point: np.ndarray) -> int:
        """Morton code of a single per-dimension key vector."""
        z = 0
        d = len(self.dimensions)
        for bit in range(self.bits_per_dimension):
            for dim in range(d):
                z |= ((int(point[dim]) >> bit) & 1) << (bit * d + dim)
        return z

    def _layout_permutation(self, table: Table) -> np.ndarray | None:
        lows, widths = [], []
        for dim in self.dimensions:
            low, high = table.bounds(dim)
            lows.append(float(low))
            widths.append(float(max(high - low, 1)))
        self._domain_low = np.array(lows)
        self._domain_width = np.array(widths)
        keys = self._normalized_keys(table)
        zvalues = self._interleave(keys)
        permutation = np.argsort(zvalues, kind="stable")
        self._zvalues = zvalues[permutation]
        return permutation

    def _finalize(self, table: Table) -> None:
        assert self._zvalues is not None
        num_rows = table.num_rows
        self._page_rows = []
        self._page_bounds = []
        z_ranges = []
        for start in range(0, num_rows, self.page_size):
            stop = min(start + self.page_size, num_rows)
            self._page_rows.append((start, stop))
            bounds = {}
            for dim in self.dimensions:
                chunk = table.column(dim).slice(start, stop)
                bounds[dim] = (int(chunk.min()), int(chunk.max()))
            self._page_bounds.append(bounds)
            z_ranges.append((int(self._zvalues[start]), int(self._zvalues[stop - 1])))
        self._page_z_ranges = np.array(z_ranges, dtype=np.uint64).reshape(-1, 2)

    # -- query --------------------------------------------------------------------

    def _query_key(self, query: Query, use_low: bool) -> np.ndarray:
        """Per-dimension key vector of the query rectangle's low or high corner."""
        assert self._domain_low is not None and self._domain_width is not None
        key_max = (1 << self.bits_per_dimension) - 1
        corner = np.empty(len(self.dimensions), dtype=np.uint64)
        for i, dim in enumerate(self.dimensions):
            predicate = query.predicate_for(dim)
            if predicate is None:
                corner[i] = 0 if use_low else key_max
                continue
            value = predicate.low if use_low else predicate.high
            normalized = (value - self._domain_low[i]) / self._domain_width[i]
            corner[i] = int(np.clip(normalized * key_max, 0, key_max))
        return corner

    def _ranges_for_query(self, query: Query) -> list[RowRange]:
        assert self._page_z_ranges is not None
        if not self._page_rows:
            return []
        z_low = self._point_z(self._query_key(query, use_low=True))
        z_high = self._point_z(self._query_key(query, use_low=False))
        ranges: list[RowRange] = []
        filters = query.filters()
        for page_id, (start, stop) in enumerate(self._page_rows):
            page_z_low = int(self._page_z_ranges[page_id, 0])
            page_z_high = int(self._page_z_ranges[page_id, 1])
            if page_z_high < z_low or page_z_low > z_high:
                continue
            bounds = self._page_bounds[page_id]
            intersects = True
            for dim, (f_low, f_high) in filters.items():
                if dim not in bounds:
                    continue
                b_low, b_high = bounds[dim]
                if b_high < f_low or b_low > f_high:
                    intersects = False
                    break
            if not intersects:
                continue
            exact = containment_exactness(bounds, query)
            ranges.append(RowRange(start, stop, exact=exact))
        return ranges

    # -- reporting -----------------------------------------------------------------

    def index_size_bytes(self) -> int:
        per_page = 16 + 16 * len(self.dimensions)  # z-range + per-dim min/max
        return len(self._page_rows) * per_page

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "page_size": self.page_size,
                "num_pages": len(self._page_rows),
                "bits_per_dimension": self.bits_per_dimension,
                "dimensions": list(self.dimensions),
            }
        )
        return info
