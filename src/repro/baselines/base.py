"""The clustered-index contract shared by every index in the reproduction.

The paper's indexes are all *clustered*: the index owns the physical row order
of the underlying column store, answers a query by identifying contiguous row
ranges to scan, and delegates the scan to the column store.  This module
defines that contract (:class:`ClusteredIndex`) and the per-query result
object (:class:`QueryResult`), so the benchmark harness can treat Tsunami,
Flood, and the non-learned baselines uniformly.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.common.errors import IndexBuildError, QueryError
from repro.query.query import AGGREGATES, Query
from repro.query.workload import Workload
from repro.storage.scan import RowRange, ScanExecutor, ScanStats, coalesce_ranges
from repro.storage.table import Table


@dataclass(frozen=True)
class QueryResult:
    """The outcome of executing one query through an index."""

    value: float
    stats: ScanStats


@dataclass
class BuildReport:
    """Timing and bookkeeping recorded while building an index.

    ``sort_seconds`` is the time spent physically reorganizing the table
    (every index pays this); ``optimize_seconds`` is the extra layout
    optimization time paid only by the learned indexes (Fig. 9b separates the
    two).
    """

    sort_seconds: float = 0.0
    optimize_seconds: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total build time."""
        return self.sort_seconds + self.optimize_seconds


@dataclass(frozen=True)
class PartialAggregate:
    """One execution's contribution to a recombined aggregate.

    Wrappers that split a query across several executions — the delta buffer's
    main-index-plus-buffer split, the sharded index's per-shard fan-out —
    produce one partial per execution and recombine them with
    :func:`combine_partial_results`.

    ``value`` carries the aggregate-specific piece: the count for ``count``,
    the partial sum for ``sum`` *and* ``avg`` (averages cannot be combined
    from averages), and the partial extreme (``NaN`` when the execution
    matched no rows) for ``min``/``max``.  ``matched`` is the number of rows
    the execution matched, which is the denominator the ``avg`` recombination
    needs.
    """

    value: float
    matched: int
    stats: ScanStats


def avg_as_sum(query: Query) -> Query:
    """The query a partial execution runs in place of an ``avg`` query.

    ``avg`` cannot be combined from two averages, so each partial execution
    runs the corresponding ``sum`` query instead; its scan counts the matching
    rows as a side effect (``ScanStats.rows_matched``), which is exactly the
    count the recombination needs — one pass per partial, not two.
    """
    if query.aggregate != "avg":
        return query
    return Query(
        predicates=query.predicates,
        aggregate="sum",
        aggregate_column=query.aggregate_column,
        query_type=query.query_type,
    )


def combine_partial_results(
    aggregate: str, partials: Sequence[PartialAggregate]
) -> QueryResult:
    """Recombine per-execution partials into one result, per aggregate.

    With no partials (every execution pruned) or no matched rows, the value
    matches what a single scan over an empty selection returns: ``0`` for
    ``count``/``sum``, ``NaN`` for ``avg``/``min``/``max``.  Stats are merged
    across the partials in order, so recombined work counters equal the sum
    of the per-execution counters.
    """
    if aggregate not in AGGREGATES:
        raise QueryError(f"unsupported aggregate {aggregate!r}")
    stats = ScanStats()
    for partial in partials:
        stats.merge(partial.stats)
    if aggregate in ("count", "sum"):
        value = 0.0
        for partial in partials:
            value += partial.value
        return QueryResult(value=value, stats=stats)
    if aggregate == "avg":
        # Each partial executed the rewritten sum query (see avg_as_sum), so
        # its value is a partial sum and its matched count the denominator.
        total_sum = 0.0
        total_count = 0
        for partial in partials:
            total_sum += partial.value
            total_count += partial.matched
        value = total_sum / total_count if total_count else float("nan")
        return QueryResult(value=value, stats=stats)
    # min / max: combine, treating NaN as "no rows in that execution".
    candidates = [p.value for p in partials if not np.isnan(p.value)]
    if not candidates:
        return QueryResult(value=float("nan"), stats=stats)
    combined = min(candidates) if aggregate == "min" else max(candidates)
    return QueryResult(value=combined, stats=stats)


def dedupe_queries(queries: Sequence[Query]) -> tuple[list[Query], list[int]]:
    """Collapse repeated query templates ahead of batch execution.

    Queries are hashable value objects, so skewed workloads that repeat a
    small set of templates can be planned and scanned once per distinct
    template.  Returns the distinct queries in first-seen order plus, for
    every input query, its position in the distinct list (used to expand the
    per-template results back to input order).
    """
    positions: dict[Query, int] = {}
    distinct: list[Query] = []
    order: list[int] = []
    for query in queries:
        position = positions.get(query)
        if position is None:
            position = len(distinct)
            positions[query] = position
            distinct.append(query)
        order.append(position)
    return distinct, order


def expand_deduped_results(
    results: Sequence[QueryResult], order: Sequence[int]
) -> list[QueryResult]:
    """Expand per-distinct-template results back to input order.

    The inverse of :func:`dedupe_queries`: every input query gets the value
    computed for its template plus an independent :class:`ScanStats` copy (a
    duplicated query still reports its full logical work).
    """
    return [
        QueryResult(value=results[position].value, stats=results[position].stats.copy())
        for position in order
    ]


def serve_workload(index, workload: Workload) -> tuple[list[QueryResult], ScanStats]:
    """Execute every query in ``workload`` through ``index.execute``.

    Returns the per-query results plus the merged work counters; shared by
    every implementation of the serving contract's ``execute_workload``.
    """
    results = []
    total = ScanStats()
    for query in workload:
        result = index.execute(query)
        results.append(result)
        total.merge(result.stats)
    return results, total


class ClusteredIndex(ABC):
    """Abstract base class for clustered multi-dimensional indexes."""

    #: Human-readable name used in benchmark reports.
    name: str = "index"

    def __init__(self) -> None:
        self._table: Table | None = None
        self._executor: ScanExecutor | None = None
        self.build_report = BuildReport()

    # -- template method -------------------------------------------------------

    def build(self, table: Table, workload: Workload | None = None) -> "ClusteredIndex":
        """Build the index over ``table``, optionally optimizing for ``workload``.

        The table is physically reorganized (clustered) according to the
        layout the index chooses.  Returns ``self`` for chaining.
        """
        if table.num_rows == 0:
            raise IndexBuildError(f"cannot build {self.name} over an empty table")
        self._table = table
        optimize_start = time.perf_counter()
        self._optimize(table, workload)
        optimize_end = time.perf_counter()
        permutation = self._layout_permutation(table)
        sort_start = time.perf_counter()
        if permutation is not None:
            table.reorder(np.asarray(permutation))
        self._finalize(table)
        sort_end = time.perf_counter()
        self.build_report.optimize_seconds = optimize_end - optimize_start
        self.build_report.sort_seconds = sort_end - sort_start
        self._executor = ScanExecutor(table)
        return self

    # -- hooks for subclasses -----------------------------------------------------

    def _optimize(self, table: Table, workload: Workload | None) -> None:
        """Choose layout parameters (learned indexes override this)."""

    @abstractmethod
    def _layout_permutation(self, table: Table) -> np.ndarray | None:
        """Return the permutation that clusters the table, or ``None`` to keep order."""

    def _finalize(self, table: Table) -> None:
        """Build lookup structures that depend on the final physical order."""

    @abstractmethod
    def _ranges_for_query(self, query: Query) -> list[RowRange]:
        """Return the physical row ranges that must be scanned for ``query``."""

    def _ranges_for_queries(self, queries: Sequence[Query]) -> list[list[RowRange]]:
        """Row ranges for a batch of queries; indexes may override to share work."""
        return [self._ranges_for_query(query) for query in queries]

    # -- public API ------------------------------------------------------------------

    @property
    def table(self) -> Table:
        """The clustered table this index was built over."""
        if self._table is None:
            raise IndexBuildError(f"{self.name} has not been built yet")
        return self._table

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._table is not None and self._executor is not None

    def execute(self, query: Query) -> QueryResult:
        """Answer ``query`` and return its aggregate value plus work counters."""
        if self._executor is None:
            raise IndexBuildError(f"{self.name} has not been built yet")
        ranges = self._ranges_for_query(query)
        value, stats = self._executor.execute(
            ranges,
            query.filters(),
            aggregate=query.aggregate,
            aggregate_column=query.aggregate_column,
        )
        return QueryResult(value=value, stats=stats)

    def execute_batch(self, queries: Sequence[Query]) -> list[QueryResult]:
        """Answer a batch of queries, sharing planning and scan work.

        Results are returned in input order and are identical to calling
        :meth:`execute` per query.  Identical queries (skewed workloads repeat
        a small set of templates) are planned and scanned once per batch; the
        distinct remainder shares grid-tree routing (where the index overrides
        :meth:`_ranges_for_queries`) and column gathers / filter masks inside
        the executor.
        """
        if self._executor is None:
            raise IndexBuildError(f"{self.name} has not been built yet")
        queries = list(queries)
        if not queries:
            return []
        distinct, order = dedupe_queries(queries)
        ranges_per_query = self._ranges_for_queries(distinct)
        outcomes = self._executor.execute_batch(
            ranges_per_query,
            [query.filters() for query in distinct],
            [query.aggregate for query in distinct],
            [query.aggregate_column for query in distinct],
        )
        return [
            QueryResult(value=outcomes[position][0], stats=outcomes[position][1].copy())
            for position in order
        ]

    def execute_workload(self, workload: Workload) -> tuple[list[QueryResult], ScanStats]:
        """Execute every query in ``workload`` and return results plus total work."""
        return serve_workload(self, workload)

    def explain(self, query: Query) -> dict:
        """Describe how this index would answer ``query`` without executing it.

        Returns the query's physical plan as counters: how many contiguous
        cell ranges would be visited, how many rows they contain, how many of
        those rows sit in *exact* ranges (scanned without per-value filter
        checks, §6.1), and the fraction of the table touched.  Useful for
        debugging layouts and for the examples' EXPLAIN-style output.
        """
        if self._executor is None:
            raise IndexBuildError(f"{self.name} has not been built yet")
        ranges = coalesce_ranges(self._ranges_for_query(query))
        rows_to_scan = sum(len(row_range) for row_range in ranges)
        exact_rows = sum(len(row_range) for row_range in ranges if row_range.exact)
        total_rows = max(self.table.num_rows, 1)
        return {
            "index": self.name,
            "filtered_dimensions": list(query.filtered_dimensions),
            "aggregate": query.aggregate,
            "cell_ranges": len(ranges),
            "rows_to_scan": rows_to_scan,
            "exact_rows": exact_rows,
            "table_fraction_scanned": rows_to_scan / total_rows,
        }

    @abstractmethod
    def index_size_bytes(self) -> int:
        """Approximate memory footprint of the index structure (excluding data)."""

    def describe(self) -> dict:
        """Structural statistics for reports; subclasses extend this."""
        return {"name": self.name, "size_bytes": self.index_size_bytes()}


def containment_exactness(
    cell_bounds: dict[str, tuple[int, int]], query: Query
) -> bool:
    """Whether a cell's bounding box is fully contained in the query rectangle.

    When true, every row in the cell matches the query filter and the scan can
    use the exact-range optimization (§6.1).  Dimensions the query does not
    filter are unconstrained and therefore always contained.
    """
    for predicate in query.predicates:
        bounds = cell_bounds.get(predicate.dimension)
        if bounds is None:
            # The cell places no constraint on this dimension, so rows inside
            # it may or may not match the predicate; containment fails.
            return False
        low, high = bounds
        if low < predicate.low or high > predicate.high:
            return False
    return True
