"""The clustered-index contract shared by every index in the reproduction.

The paper's indexes are all *clustered*: the index owns the physical row order
of the underlying column store, answers a query by identifying contiguous row
ranges to scan, and delegates the scan to the column store.  This module
defines that contract (:class:`ClusteredIndex`) and the per-query result
object (:class:`QueryResult`), so the benchmark harness can treat Tsunami,
Flood, and the non-learned baselines uniformly.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.common.errors import IndexBuildError
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.scan import RowRange, ScanExecutor, ScanStats, coalesce_ranges
from repro.storage.table import Table


@dataclass(frozen=True)
class QueryResult:
    """The outcome of executing one query through an index."""

    value: float
    stats: ScanStats


@dataclass
class BuildReport:
    """Timing and bookkeeping recorded while building an index.

    ``sort_seconds`` is the time spent physically reorganizing the table
    (every index pays this); ``optimize_seconds`` is the extra layout
    optimization time paid only by the learned indexes (Fig. 9b separates the
    two).
    """

    sort_seconds: float = 0.0
    optimize_seconds: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total build time."""
        return self.sort_seconds + self.optimize_seconds


def dedupe_queries(queries: Sequence[Query]) -> tuple[list[Query], list[int]]:
    """Collapse repeated query templates ahead of batch execution.

    Queries are hashable value objects, so skewed workloads that repeat a
    small set of templates can be planned and scanned once per distinct
    template.  Returns the distinct queries in first-seen order plus, for
    every input query, its position in the distinct list (used to expand the
    per-template results back to input order).
    """
    positions: dict[Query, int] = {}
    distinct: list[Query] = []
    order: list[int] = []
    for query in queries:
        position = positions.get(query)
        if position is None:
            position = len(distinct)
            positions[query] = position
            distinct.append(query)
        order.append(position)
    return distinct, order


class ClusteredIndex(ABC):
    """Abstract base class for clustered multi-dimensional indexes."""

    #: Human-readable name used in benchmark reports.
    name: str = "index"

    def __init__(self) -> None:
        self._table: Table | None = None
        self._executor: ScanExecutor | None = None
        self.build_report = BuildReport()

    # -- template method -------------------------------------------------------

    def build(self, table: Table, workload: Workload | None = None) -> "ClusteredIndex":
        """Build the index over ``table``, optionally optimizing for ``workload``.

        The table is physically reorganized (clustered) according to the
        layout the index chooses.  Returns ``self`` for chaining.
        """
        if table.num_rows == 0:
            raise IndexBuildError(f"cannot build {self.name} over an empty table")
        self._table = table
        optimize_start = time.perf_counter()
        self._optimize(table, workload)
        optimize_end = time.perf_counter()
        permutation = self._layout_permutation(table)
        sort_start = time.perf_counter()
        if permutation is not None:
            table.reorder(np.asarray(permutation))
        self._finalize(table)
        sort_end = time.perf_counter()
        self.build_report.optimize_seconds = optimize_end - optimize_start
        self.build_report.sort_seconds = sort_end - sort_start
        self._executor = ScanExecutor(table)
        return self

    # -- hooks for subclasses -----------------------------------------------------

    def _optimize(self, table: Table, workload: Workload | None) -> None:
        """Choose layout parameters (learned indexes override this)."""

    @abstractmethod
    def _layout_permutation(self, table: Table) -> np.ndarray | None:
        """Return the permutation that clusters the table, or ``None`` to keep order."""

    def _finalize(self, table: Table) -> None:
        """Build lookup structures that depend on the final physical order."""

    @abstractmethod
    def _ranges_for_query(self, query: Query) -> list[RowRange]:
        """Return the physical row ranges that must be scanned for ``query``."""

    def _ranges_for_queries(self, queries: Sequence[Query]) -> list[list[RowRange]]:
        """Row ranges for a batch of queries; indexes may override to share work."""
        return [self._ranges_for_query(query) for query in queries]

    # -- public API ------------------------------------------------------------------

    @property
    def table(self) -> Table:
        """The clustered table this index was built over."""
        if self._table is None:
            raise IndexBuildError(f"{self.name} has not been built yet")
        return self._table

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._table is not None and self._executor is not None

    def execute(self, query: Query) -> QueryResult:
        """Answer ``query`` and return its aggregate value plus work counters."""
        if self._executor is None:
            raise IndexBuildError(f"{self.name} has not been built yet")
        ranges = self._ranges_for_query(query)
        value, stats = self._executor.execute(
            ranges,
            query.filters(),
            aggregate=query.aggregate,
            aggregate_column=query.aggregate_column,
        )
        return QueryResult(value=value, stats=stats)

    def execute_batch(self, queries: Sequence[Query]) -> list[QueryResult]:
        """Answer a batch of queries, sharing planning and scan work.

        Results are returned in input order and are identical to calling
        :meth:`execute` per query.  Identical queries (skewed workloads repeat
        a small set of templates) are planned and scanned once per batch; the
        distinct remainder shares grid-tree routing (where the index overrides
        :meth:`_ranges_for_queries`) and column gathers / filter masks inside
        the executor.
        """
        if self._executor is None:
            raise IndexBuildError(f"{self.name} has not been built yet")
        queries = list(queries)
        if not queries:
            return []
        distinct, order = dedupe_queries(queries)
        ranges_per_query = self._ranges_for_queries(distinct)
        outcomes = self._executor.execute_batch(
            ranges_per_query,
            [query.filters() for query in distinct],
            [query.aggregate for query in distinct],
            [query.aggregate_column for query in distinct],
        )
        return [
            QueryResult(value=outcomes[position][0], stats=outcomes[position][1].copy())
            for position in order
        ]

    def execute_workload(self, workload: Workload) -> tuple[list[QueryResult], ScanStats]:
        """Execute every query in ``workload`` and return results plus total work."""
        results = []
        total = ScanStats()
        for query in workload:
            result = self.execute(query)
            results.append(result)
            total.merge(result.stats)
        return results, total

    def explain(self, query: Query) -> dict:
        """Describe how this index would answer ``query`` without executing it.

        Returns the query's physical plan as counters: how many contiguous
        cell ranges would be visited, how many rows they contain, how many of
        those rows sit in *exact* ranges (scanned without per-value filter
        checks, §6.1), and the fraction of the table touched.  Useful for
        debugging layouts and for the examples' EXPLAIN-style output.
        """
        if self._executor is None:
            raise IndexBuildError(f"{self.name} has not been built yet")
        ranges = coalesce_ranges(self._ranges_for_query(query))
        rows_to_scan = sum(len(row_range) for row_range in ranges)
        exact_rows = sum(len(row_range) for row_range in ranges if row_range.exact)
        total_rows = max(self.table.num_rows, 1)
        return {
            "index": self.name,
            "filtered_dimensions": list(query.filtered_dimensions),
            "aggregate": query.aggregate,
            "cell_ranges": len(ranges),
            "rows_to_scan": rows_to_scan,
            "exact_rows": exact_rows,
            "table_fraction_scanned": rows_to_scan / total_rows,
        }

    @abstractmethod
    def index_size_bytes(self) -> int:
        """Approximate memory footprint of the index structure (excluding data)."""

    def describe(self) -> dict:
        """Structural statistics for reports; subclasses extend this."""
        return {"name": self.name, "size_bytes": self.index_size_bytes()}


def containment_exactness(
    cell_bounds: dict[str, tuple[int, int]], query: Query
) -> bool:
    """Whether a cell's bounding box is fully contained in the query rectangle.

    When true, every row in the cell matches the query filter and the scan can
    use the exact-range optimization (§6.1).  Dimensions the query does not
    filter are unconstrained and therefore always contained.
    """
    for predicate in query.predicates:
        bounds = cell_bounds.get(predicate.dimension)
        if bounds is None:
            # The cell places no constraint on this dimension, so rows inside
            # it may or may not match the predicate; containment fails.
            return False
        low, high = bounds
        if low < predicate.low or high > predicate.high:
            return False
    return True
