"""Clustered k-d tree baseline (§6.1 baseline 4).

The k-d tree recursively partitions space at the median value of one
dimension, cycling through dimensions in round-robin order of workload
selectivity (most selective first), until the number of points in a leaf
falls below the page size.  Points within each leaf are stored contiguously;
queries traverse the tree to find intersecting leaves and scan them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import ClusteredIndex, containment_exactness
from repro.query.query import Query
from repro.query.selectivity import average_dimension_selectivity
from repro.query.workload import Workload
from repro.storage.scan import RowRange
from repro.storage.table import Table


@dataclass
class _KdNode:
    """One node of the k-d tree.

    Internal nodes store the split dimension and value; leaves store the
    physical row range (assigned after clustering) and their region bounds.
    """

    bounds: dict[str, tuple[float, float]]
    split_dimension: str | None = None
    split_value: float | None = None
    left: "_KdNode | None" = None
    right: "_KdNode | None" = None
    row_start: int = -1
    row_stop: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.split_dimension is None


class KdTreeIndex(ClusteredIndex):
    """Median-split k-d tree with workload-ordered round-robin split dimensions."""

    name = "kd-tree"

    def __init__(self, page_size: int = 4096, dimensions: list[str] | None = None) -> None:
        super().__init__()
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        self.page_size = page_size
        self._requested_dimensions = dimensions
        self.dimensions: list[str] = []
        self._root: _KdNode | None = None
        self._leaves: list[_KdNode] = []
        self._num_nodes = 0

    # -- build -------------------------------------------------------------------

    def _optimize(self, table: Table, workload: Workload | None) -> None:
        if self._requested_dimensions is not None:
            self.dimensions = list(self._requested_dimensions)
            return
        candidates = list(table.column_names)
        if workload is None or len(workload) == 0:
            self.dimensions = candidates
            return
        sample = table
        if table.num_rows > 20_000:
            sample = table.sample_rows(20_000, np.random.default_rng(11))
        filtered = list(workload.filtered_dimensions())
        unfiltered = [d for d in candidates if d not in filtered]
        # Most selective (lowest average selectivity) dimensions are split first.
        filtered.sort(
            key=lambda dim: average_dimension_selectivity(sample, workload.queries, dim)
        )
        self.dimensions = filtered + unfiltered

    def _build_node(
        self,
        table: Table,
        row_ids: np.ndarray,
        depth: int,
        bounds: dict[str, tuple[float, float]],
        leaf_order: list[np.ndarray],
    ) -> _KdNode:
        self._num_nodes += 1
        if len(row_ids) <= self.page_size:
            node = _KdNode(bounds=bounds)
            node.row_start = sum(len(chunk) for chunk in leaf_order)
            node.row_stop = node.row_start + len(row_ids)
            leaf_order.append(row_ids)
            self._leaves.append(node)
            return node

        dimension = self.dimensions[depth % len(self.dimensions)]
        values = table.values(dimension)[row_ids]
        median = float(np.median(values))
        left_mask = values <= median
        # Degenerate split (all values equal): make this a leaf to guarantee progress.
        if left_mask.all() or not left_mask.any():
            node = _KdNode(bounds=bounds)
            node.row_start = sum(len(chunk) for chunk in leaf_order)
            node.row_stop = node.row_start + len(row_ids)
            leaf_order.append(row_ids)
            self._leaves.append(node)
            return node

        left_bounds = dict(bounds)
        right_bounds = dict(bounds)
        low, high = bounds[dimension]
        left_bounds[dimension] = (low, median)
        right_bounds[dimension] = (median, high)
        node = _KdNode(bounds=bounds, split_dimension=dimension, split_value=median)
        node.left = self._build_node(
            table, row_ids[left_mask], depth + 1, left_bounds, leaf_order
        )
        node.right = self._build_node(
            table, row_ids[~left_mask], depth + 1, right_bounds, leaf_order
        )
        return node

    def _layout_permutation(self, table: Table) -> np.ndarray | None:
        self._leaves = []
        self._num_nodes = 0
        bounds = {
            dim: (float(low), float(high))
            for dim, (low, high) in ((d, table.bounds(d)) for d in table.column_names)
        }
        leaf_order: list[np.ndarray] = []
        all_rows = np.arange(table.num_rows)
        self._root = self._build_node(table, all_rows, 0, bounds, leaf_order)
        return np.concatenate(leaf_order) if leaf_order else None

    # -- query -------------------------------------------------------------------

    def _collect(self, node: _KdNode, query: Query, out: list[RowRange]) -> None:
        if node.is_leaf:
            int_bounds = {
                dim: (int(np.floor(low)), int(np.ceil(high)))
                for dim, (low, high) in node.bounds.items()
            }
            exact = containment_exactness(int_bounds, query)
            out.append(RowRange(node.row_start, node.row_stop, exact=exact))
            return
        predicate = query.predicate_for(node.split_dimension)
        if predicate is None:
            self._collect(node.left, query, out)
            self._collect(node.right, query, out)
            return
        if predicate.low <= node.split_value:
            self._collect(node.left, query, out)
        if predicate.high > node.split_value:
            self._collect(node.right, query, out)

    def _ranges_for_query(self, query: Query) -> list[RowRange]:
        assert self._root is not None
        ranges: list[RowRange] = []
        self._collect(self._root, query, ranges)
        return ranges

    # -- reporting -----------------------------------------------------------------

    def index_size_bytes(self) -> int:
        num_internal = self._num_nodes - len(self._leaves)
        internal_bytes = num_internal * 32  # split dim, value, two child pointers
        leaf_bytes = len(self._leaves) * (16 + 16 * len(self.dimensions))
        return internal_bytes + leaf_bytes

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "page_size": self.page_size,
                "num_nodes": self._num_nodes,
                "num_leaves": len(self._leaves),
            }
        )
        return info
