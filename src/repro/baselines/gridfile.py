"""Grid File baseline (Nievergelt et al. [31], discussed in §6.1 and §7).

The Grid File partitions each indexed dimension independently with its own
*scale* (a list of split points) and keeps a directory mapping every grid cell
to a data bucket.  The paper excludes it from the headline comparison because
Flood already dominates it, but it is the closest non-learned relative of the
grid-based learned indexes, which makes it a useful extra baseline for the
extended benchmarks in this repository.

This implementation follows the clustered-index contract used throughout the
repo: the scales are equi-depth per dimension (each partition holds roughly
the same number of rows along that dimension — the adaptive aspect of the
original design), rows are physically clustered by cell id, and a query scans
the contiguous row ranges of every intersecting cell.  Unlike Flood the number
of partitions per dimension is purely data-driven (no workload optimization),
which is exactly the gap the learned indexes exploit.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.baselines.base import ClusteredIndex, containment_exactness
from repro.common.errors import IndexBuildError
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.scan import RowRange
from repro.storage.table import Table

#: Never create more grid cells than this, regardless of page size; protects
#: the directory from exploding at high dimensionality (§5.1's 2^d blow-up).
DEFAULT_MAX_CELLS = 1 << 18

#: At most this many dimensions receive more than one partition.  Grid Files
#: degrade quickly with dimensionality, so the most-filtered dimensions win.
DEFAULT_MAX_INDEXED_DIMENSIONS = 6


class GridFileIndex(ClusteredIndex):
    """Equi-depth Grid File with a flat cell directory and clustered buckets."""

    name = "grid-file"

    def __init__(
        self,
        page_size: int = 2048,
        max_cells: int = DEFAULT_MAX_CELLS,
        max_indexed_dimensions: int = DEFAULT_MAX_INDEXED_DIMENSIONS,
        dimensions: list[str] | None = None,
    ) -> None:
        super().__init__()
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        if max_cells < 1:
            raise ValueError(f"max_cells must be >= 1, got {max_cells}")
        if max_indexed_dimensions < 1:
            raise ValueError(
                f"max_indexed_dimensions must be >= 1, got {max_indexed_dimensions}"
            )
        self.page_size = page_size
        self.max_cells = max_cells
        self.max_indexed_dimensions = max_indexed_dimensions
        self._requested_dimensions = dimensions
        self.dimensions: list[str] = []
        self.partitions: dict[str, int] = {}
        self._scales: dict[str, np.ndarray] = {}
        self._strides: dict[str, int] = {}
        self._offsets: np.ndarray | None = None
        self._total_cells = 0

    # -- build -----------------------------------------------------------------------

    def _optimize(self, table: Table, workload: Workload | None) -> None:
        """Pick the indexed dimensions and the number of partitions for each.

        The workload is only used to decide *which* dimensions to index (the
        ones queries actually filter); partition counts are derived from the
        data volume alone, which is what distinguishes a Grid File from the
        learned grids.
        """
        if self._requested_dimensions is not None:
            self.dimensions = list(self._requested_dimensions)
        else:
            candidates = list(table.column_names)
            if workload is not None and len(workload) > 0:
                filtered = [d for d in workload.filtered_dimensions() if d in candidates]
                self.dimensions = filtered or candidates
            else:
                self.dimensions = candidates
        self.dimensions = self.dimensions[: self.max_indexed_dimensions]
        if not self.dimensions:
            raise IndexBuildError("Grid File needs at least one dimension to index")

        num_dims = len(self.dimensions)
        target_cells = max(1, table.num_rows // self.page_size)
        per_dimension = max(1, int(round(target_cells ** (1.0 / num_dims))))
        self.partitions = {dim: per_dimension for dim in self.dimensions}
        # Respect the directory budget by shrinking partition counts evenly.
        while self._cell_count() > self.max_cells:
            widest = max(self.partitions, key=self.partitions.get)
            if self.partitions[widest] == 1:
                break
            self.partitions[widest] -= 1

    def _cell_count(self) -> int:
        total = 1
        for count in self.partitions.values():
            total *= count
        return total

    def _fit_scales(self, table: Table) -> dict[str, np.ndarray]:
        """Equi-depth split points (the Grid File's linear scales) per dimension."""
        scales: dict[str, np.ndarray] = {}
        for dim in self.dimensions:
            count = self.partitions[dim]
            if count <= 1:
                scales[dim] = np.array([], dtype=np.float64)
                continue
            values = table.values(dim)
            quantiles = np.quantile(values, np.linspace(0, 1, count + 1)[1:-1])
            scales[dim] = np.asarray(quantiles, dtype=np.float64)
        return scales

    def _partition_ids(self, values: np.ndarray, dim: str) -> np.ndarray:
        """Partition id of every value along ``dim`` (clipped to the scale)."""
        scale = self._scales[dim]
        if scale.size == 0:
            return np.zeros(values.shape, dtype=np.int64)
        return np.searchsorted(scale, values, side="right").astype(np.int64)

    def _layout_permutation(self, table: Table) -> np.ndarray | None:
        self._scales = self._fit_scales(table)
        self._strides = {}
        stride = 1
        for dim in reversed(self.dimensions):
            self._strides[dim] = stride
            stride *= self.partitions[dim]
        self._total_cells = stride

        cell_ids = np.zeros(table.num_rows, dtype=np.int64)
        for dim in self.dimensions:
            cell_ids += self._partition_ids(table.values(dim), dim) * self._strides[dim]
        permutation = np.argsort(cell_ids, kind="stable")
        counts = np.bincount(cell_ids[permutation], minlength=self._total_cells)
        self._offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return permutation

    # -- query -----------------------------------------------------------------------

    def _partition_window(self, query: Query, dim: str) -> tuple[int, int]:
        """Inclusive window of partition ids of ``dim`` intersecting the query."""
        predicate = query.predicate_for(dim)
        last = self.partitions[dim] - 1
        if predicate is None or last == 0:
            return 0, last
        scale = self._scales[dim]
        first = int(np.searchsorted(scale, predicate.low, side="right"))
        stop = int(np.searchsorted(scale, predicate.high, side="right"))
        return min(first, last), min(stop, last)

    def _cell_bounds(self, assignment: dict[str, int], table: Table) -> dict[str, tuple[int, int]]:
        """Axis-aligned bounds of one cell, for the exact-range optimization."""
        bounds: dict[str, tuple[int, int]] = {}
        for dim, partition in assignment.items():
            scale = self._scales[dim]
            table_low, table_high = table.bounds(dim)
            # Partition p holds values in [scale[p-1], scale[p]); the integer
            # bounds below may be slightly wider than the true extent (never
            # narrower), which keeps the exact-range optimization safe.
            low = table_low if partition == 0 else int(np.ceil(scale[partition - 1]))
            high = (
                table_high
                if partition >= scale.size
                else int(np.floor(scale[partition]))
            )
            bounds[dim] = (low, high)
        return bounds

    def _ranges_for_query(self, query: Query) -> list[RowRange]:
        assert self._offsets is not None
        windows = [self._partition_window(query, dim) for dim in self.dimensions]
        ranges: list[RowRange] = []
        for combination in product(*[range(first, last + 1) for first, last in windows]):
            assignment = dict(zip(self.dimensions, combination))
            cell_id = sum(assignment[dim] * self._strides[dim] for dim in self.dimensions)
            start = int(self._offsets[cell_id])
            stop = int(self._offsets[cell_id + 1])
            if stop <= start:
                continue
            exact = containment_exactness(self._cell_bounds(assignment, self.table), query)
            ranges.append(RowRange(start, stop, exact=exact))
        return ranges

    # -- reporting --------------------------------------------------------------------

    @property
    def num_cells(self) -> int:
        """Number of directory cells (including empty ones)."""
        return self._total_cells

    def index_size_bytes(self) -> int:
        """Directory (one offset per cell) plus the per-dimension scales."""
        scales = sum(scale.size * 8 for scale in self._scales.values())
        return self._total_cells * 8 + scales

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "page_size": self.page_size,
                "dimensions": list(self.dimensions),
                "partitions": dict(self.partitions),
                "num_cells": self.num_cells,
            }
        )
        return info
