"""Clustered single-dimensional index (§6.1 baseline 1).

Points are sorted by the most selective dimension in the query workload.  A
query that filters this dimension locates the matching contiguous run of rows
with binary search; any other query falls back to a full scan.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ClusteredIndex
from repro.common.errors import IndexBuildError
from repro.query.query import Query
from repro.query.selectivity import average_dimension_selectivity
from repro.query.workload import Workload
from repro.storage.scan import RowRange
from repro.storage.table import Table


class SingleDimensionIndex(ClusteredIndex):
    """Sorts the table by one dimension and binary-searches range filters on it."""

    name = "single-dim"

    def __init__(self, sort_dimension: str | None = None) -> None:
        super().__init__()
        self._requested_dimension = sort_dimension
        self.sort_dimension: str | None = sort_dimension
        self._sorted_values: np.ndarray | None = None

    def _optimize(self, table: Table, workload: Workload | None) -> None:
        if self._requested_dimension is not None:
            if self._requested_dimension not in table:
                raise IndexBuildError(
                    f"sort dimension {self._requested_dimension!r} is not a column of "
                    f"table {table.name!r}"
                )
            self.sort_dimension = self._requested_dimension
            return
        if workload is None or len(workload) == 0:
            self.sort_dimension = table.column_names[0]
            return
        # Pick the dimension with the lowest (most selective) average filter
        # selectivity among the dimensions the workload actually filters.
        sample = table
        if table.num_rows > 20_000:
            sample = table.sample_rows(20_000, np.random.default_rng(5))
        candidates = workload.filtered_dimensions() or tuple(table.column_names)
        selectivities = {
            dim: average_dimension_selectivity(sample, workload.queries, dim)
            for dim in candidates
        }
        self.sort_dimension = min(selectivities, key=selectivities.get)

    def _layout_permutation(self, table: Table) -> np.ndarray | None:
        assert self.sort_dimension is not None
        return np.argsort(table.values(self.sort_dimension), kind="stable")

    def _finalize(self, table: Table) -> None:
        assert self.sort_dimension is not None
        self._sorted_values = np.array(table.values(self.sort_dimension))

    def _ranges_for_query(self, query: Query) -> list[RowRange]:
        assert self.sort_dimension is not None and self._sorted_values is not None
        predicate = query.predicate_for(self.sort_dimension)
        if predicate is None:
            return [RowRange(0, self.table.num_rows, exact=False)]
        start = int(np.searchsorted(self._sorted_values, predicate.low, side="left"))
        stop = int(np.searchsorted(self._sorted_values, predicate.high, side="right"))
        if start >= stop:
            return []
        # If the query only filters the sort dimension, every row in the run
        # matches and the scan can skip per-value checks.
        exact = query.num_filtered_dimensions == 1
        return [RowRange(start, stop, exact=exact)]

    def index_size_bytes(self) -> int:
        # The sorted column itself is data, not index; the index structure is
        # just the choice of sort dimension.
        return 8

    def describe(self) -> dict:
        info = super().describe()
        info["sort_dimension"] = self.sort_dimension
        return info
