"""Flood: the original learned multi-dimensional index (§2.2, §6.1 baseline 5).

Flood imposes a single uniform grid over the whole data space: every dimension
is partitioned independently, uniformly in its own CDF, and the number of
partitions per dimension is tuned for the query workload.  The paper evaluates
Flood with Tsunami's cost model and binary-search refinement instead of
per-cell models; we therefore implement Flood as a single
:class:`~repro.core.augmented_grid.AugmentedGrid` restricted to the
all-independent skeleton, with partition counts optimized by gradient descent
over the same cost model.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ClusteredIndex
from repro.common.errors import OptimizationError
from repro.core.augmented_grid import DEFAULT_MAX_CELLS, AugmentedGrid, AugmentedGridConfig
from repro.core.cost_model import CostModel
from repro.core.optimizer import GradientDescentOnly, initialize_partitions
from repro.core.skeleton import Skeleton
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.scan import RowRange
from repro.storage.table import Table


class FloodIndex(ClusteredIndex):
    """A workload-tuned uniform grid with per-dimension CDF models."""

    name = "flood"

    def __init__(
        self,
        cost_model: CostModel | None = None,
        optimizer_iterations: int = 4,
        target_points_per_cell: int = 256,
        sample_rows: int = 20_000,
        max_cells: int = DEFAULT_MAX_CELLS,
        seed: int = 47,
    ) -> None:
        super().__init__()
        self.cost_model = cost_model or CostModel()
        self.optimizer_iterations = optimizer_iterations
        self.target_points_per_cell = target_points_per_cell
        self.sample_rows = sample_rows
        self.max_cells = max_cells
        self.seed = seed
        self.grid: AugmentedGrid | None = None
        self._config: AugmentedGridConfig | None = None
        self.optimizer_result = None

    def _optimize(self, table: Table, workload: Workload | None) -> None:
        dims = list(table.column_names)
        skeleton = Skeleton.all_independent(dims)
        if workload is None or len(workload) == 0:
            partitions = initialize_partitions(
                skeleton,
                table,
                Workload([]),
                target_points_per_cell=self.target_points_per_cell,
                max_cells=self.max_cells,
                seed=self.seed,
            )
            self._config = AugmentedGridConfig(
                skeleton=skeleton, partitions=partitions, max_cells=self.max_cells
            )
            return
        optimizer = GradientDescentOnly(
            cost_model=self.cost_model,
            max_iterations=self.optimizer_iterations,
            naive_init=True,
            target_points_per_cell=self.target_points_per_cell,
            sample_rows=self.sample_rows,
            max_cells=self.max_cells,
            seed=self.seed,
        )
        try:
            result = optimizer.optimize(table, workload, dimensions=dims)
            self.optimizer_result = result
            self._config = result.config
        except OptimizationError:
            partitions = initialize_partitions(
                skeleton,
                table,
                workload,
                target_points_per_cell=self.target_points_per_cell,
                max_cells=self.max_cells,
                seed=self.seed,
            )
            self._config = AugmentedGridConfig(
                skeleton=skeleton, partitions=partitions, max_cells=self.max_cells
            )

    def _layout_permutation(self, table: Table) -> np.ndarray | None:
        assert self._config is not None
        self.grid = AugmentedGrid(self._config)
        return self.grid.fit(table)

    def _ranges_for_query(self, query: Query) -> list[RowRange]:
        assert self.grid is not None
        return self.grid.ranges_for_query(query, offset=0)

    def index_size_bytes(self) -> int:
        return self.grid.index_size_bytes() if self.grid is not None else 0

    @property
    def num_cells(self) -> int:
        """Total number of grid cells (the Flood row of Table 4)."""
        return self.grid.num_cells if self.grid is not None else 0

    def describe(self) -> dict:
        info = super().describe()
        if self.grid is not None:
            info.update(
                {
                    "num_cells": self.grid.num_cells,
                    "partitions": dict(self.grid.config.partitions),
                }
            )
        return info
