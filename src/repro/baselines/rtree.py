"""Bulk-loaded R-tree baseline (Beckmann et al. [3], discussed in §6.1 and §7).

The paper's headline comparison omits the R*-tree because Flood already showed
consistent superiority over it, but commercial systems (e.g. IBM Informix,
§7) still rely on R-trees for multi-dimensional data, so the extended
benchmarks in this repository include one.

The implementation is a clustered, read-only R-tree built with the classic
Sort-Tile-Recursive (STR) bulk-loading algorithm: rows are recursively sorted
and tiled one dimension at a time until each tile fits in a leaf of
``page_size`` rows, leaves are stored contiguously (so each is one cell range
at query time), and internal nodes of fan-out ``fanout`` store the minimum
bounding rectangle (MBR) of their subtree.  Queries descend from the root,
pruning subtrees whose MBR does not intersect the query rectangle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import ClusteredIndex, containment_exactness
from repro.common.errors import IndexBuildError
from repro.query.query import Query
from repro.query.selectivity import average_dimension_selectivity
from repro.query.workload import Workload
from repro.storage.scan import RowRange
from repro.storage.table import Table

#: R-trees degrade sharply with dimensionality; only the most selective
#: workload dimensions participate in the STR tiling and the MBRs.
DEFAULT_MAX_INDEXED_DIMENSIONS = 6


@dataclass
class _RTreeNode:
    """One R-tree node: an MBR plus either child nodes or a leaf row range."""

    bounds: dict[str, tuple[int, int]]
    children: list["_RTreeNode"] = field(default_factory=list)
    row_start: int = -1
    row_stop: int = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children


class RTreeIndex(ClusteredIndex):
    """STR bulk-loaded, clustered R-tree over the workload's filtered dimensions."""

    name = "r-tree"

    def __init__(
        self,
        page_size: int = 2048,
        fanout: int = 16,
        max_indexed_dimensions: int = DEFAULT_MAX_INDEXED_DIMENSIONS,
        dimensions: list[str] | None = None,
    ) -> None:
        super().__init__()
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        if max_indexed_dimensions < 1:
            raise ValueError(
                f"max_indexed_dimensions must be >= 1, got {max_indexed_dimensions}"
            )
        self.page_size = page_size
        self.fanout = fanout
        self.max_indexed_dimensions = max_indexed_dimensions
        self._requested_dimensions = dimensions
        self.dimensions: list[str] = []
        self._root: _RTreeNode | None = None
        self._num_leaves = 0
        self._num_nodes = 0
        self._height = 0

    # -- build -----------------------------------------------------------------------

    def _optimize(self, table: Table, workload: Workload | None) -> None:
        """Choose the indexing dimensions (most selective workload dimensions first)."""
        if self._requested_dimensions is not None:
            self.dimensions = list(self._requested_dimensions)[: self.max_indexed_dimensions]
            if not self.dimensions:
                raise IndexBuildError("R-tree needs at least one dimension to index")
            return
        candidates = list(table.column_names)
        if workload is None or len(workload) == 0:
            self.dimensions = candidates[: self.max_indexed_dimensions]
            return
        sample = table
        if table.num_rows > 20_000:
            sample = table.sample_rows(20_000, np.random.default_rng(17))
        filtered = [d for d in workload.filtered_dimensions() if d in candidates]
        filtered.sort(
            key=lambda dim: average_dimension_selectivity(sample, workload.queries, dim)
        )
        self.dimensions = (filtered or candidates)[: self.max_indexed_dimensions]

    def _str_tiles(self, table: Table, row_ids: np.ndarray, depth: int) -> list[np.ndarray]:
        """Recursively sort-tile ``row_ids`` into leaves of at most ``page_size`` rows."""
        if len(row_ids) <= self.page_size:
            return [row_ids]
        dim = self.dimensions[depth % len(self.dimensions)]
        order = np.argsort(table.values(dim)[row_ids], kind="stable")
        ordered = row_ids[order]
        num_tiles = int(np.ceil(len(ordered) / self.page_size))
        # Tile count per slab follows STR: ceil(num_tiles ** (1/remaining dims)),
        # approximated here by splitting into sqrt-many slabs per level.
        slabs = max(2, int(np.ceil(np.sqrt(num_tiles))))
        slab_size = int(np.ceil(len(ordered) / slabs))
        tiles: list[np.ndarray] = []
        for start in range(0, len(ordered), slab_size):
            slab = ordered[start : start + slab_size]
            tiles.extend(self._str_tiles(table, slab, depth + 1))
        return tiles

    def _leaf_bounds(self, table: Table, row_ids: np.ndarray) -> dict[str, tuple[int, int]]:
        return {
            dim: (
                int(table.values(dim)[row_ids].min()),
                int(table.values(dim)[row_ids].max()),
            )
            for dim in self.dimensions
        }

    @staticmethod
    def _merge_bounds(children: list[_RTreeNode]) -> dict[str, tuple[int, int]]:
        merged: dict[str, tuple[int, int]] = {}
        for child in children:
            for dim, (low, high) in child.bounds.items():
                if dim in merged:
                    existing_low, existing_high = merged[dim]
                    merged[dim] = (min(existing_low, low), max(existing_high, high))
                else:
                    merged[dim] = (low, high)
        return merged

    def _layout_permutation(self, table: Table) -> np.ndarray | None:
        all_rows = np.arange(table.num_rows)
        tiles = self._str_tiles(table, all_rows, depth=0)

        leaves: list[_RTreeNode] = []
        offset = 0
        for tile in tiles:
            node = _RTreeNode(bounds=self._leaf_bounds(table, tile))
            node.row_start = offset
            node.row_stop = offset + len(tile)
            offset += len(tile)
            leaves.append(node)
        self._num_leaves = len(leaves)
        self._num_nodes = len(leaves)
        self._height = 1

        # Pack nodes bottom-up into parents of ``fanout`` children.
        level = leaves
        while len(level) > 1:
            parents: list[_RTreeNode] = []
            for start in range(0, len(level), self.fanout):
                children = level[start : start + self.fanout]
                parents.append(_RTreeNode(bounds=self._merge_bounds(children), children=children))
            self._num_nodes += len(parents)
            self._height += 1
            level = parents
        self._root = level[0]
        return np.concatenate(tiles) if tiles else None

    # -- query -----------------------------------------------------------------------

    def _collect(self, node: _RTreeNode, query: Query, out: list[RowRange]) -> None:
        if not query.intersects_box(node.bounds):
            return
        if node.is_leaf:
            out.append(
                RowRange(
                    node.row_start,
                    node.row_stop,
                    exact=containment_exactness(node.bounds, query),
                )
            )
            return
        for child in node.children:
            self._collect(child, query, out)

    def _ranges_for_query(self, query: Query) -> list[RowRange]:
        if self._root is None:
            raise IndexBuildError("R-tree has not been built")
        ranges: list[RowRange] = []
        self._collect(self._root, query, ranges)
        return ranges

    # -- reporting --------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of levels from root to leaves (1 for a single-leaf tree)."""
        return self._height

    def index_size_bytes(self) -> int:
        """Every node stores one MBR (two ints per indexed dimension) plus pointers."""
        per_node = 16 * len(self.dimensions) + 8 * self.fanout
        return self._num_nodes * per_node

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "page_size": self.page_size,
                "fanout": self.fanout,
                "dimensions": list(self.dimensions),
                "num_nodes": self._num_nodes,
                "num_leaves": self._num_leaves,
                "height": self.height,
            }
        )
        return info
