"""The trivial no-index baseline: scan every row for every query.

Not part of the paper's headline comparison, but useful as a correctness
oracle and as the lower bound every real index must beat.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ClusteredIndex
from repro.query.query import Query
from repro.storage.scan import RowRange
from repro.storage.table import Table


class FullScanIndex(ClusteredIndex):
    """Answers every query by scanning the whole table."""

    name = "full-scan"

    def _layout_permutation(self, table: Table) -> np.ndarray | None:
        return None

    def _ranges_for_query(self, query: Query) -> list[RowRange]:
        return [RowRange(0, self.table.num_rows, exact=False)]

    def index_size_bytes(self) -> int:
        return 0
