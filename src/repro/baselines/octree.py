"""Hyperoctree baseline (§6.1 baseline 3).

The hyperoctree recursively subdivides space equally into hyperoctants — the
d-dimensional analogue of quadrants — until each leaf holds at most ``page
size`` points.  In high dimensions a single split would create ``2^d``
children, which is impractical beyond a handful of dimensions, so each level
splits over a bounded subset of dimensions chosen round-robin by depth (a
standard engineering compromise; the paper's datasets have 7–9 dimensions,
where the full split is still feasible with the default bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import ClusteredIndex, containment_exactness
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.scan import RowRange
from repro.storage.table import Table


@dataclass
class _OctreeNode:
    """One node of the hyperoctree: either an internal split or a leaf row range."""

    bounds: dict[str, tuple[float, float]]
    children: list["_OctreeNode"] = field(default_factory=list)
    split_dimensions: list[str] = field(default_factory=list)
    row_start: int = -1
    row_stop: int = -1

    @property
    def is_leaf(self) -> bool:
        return not self.children


class HyperOctreeIndex(ClusteredIndex):
    """Equal-subdivision hyperoctree with a tunable page size."""

    name = "hyperoctree"

    def __init__(
        self,
        page_size: int = 4096,
        max_split_dimensions: int = 6,
        max_depth: int = 32,
    ) -> None:
        super().__init__()
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        if max_split_dimensions < 1:
            raise ValueError("max_split_dimensions must be >= 1")
        self.page_size = page_size
        self.max_split_dimensions = max_split_dimensions
        self.max_depth = max_depth
        self.dimensions: list[str] = []
        self._root: _OctreeNode | None = None
        self._leaves: list[_OctreeNode] = []
        self._num_nodes = 0

    def _optimize(self, table: Table, workload: Workload | None) -> None:
        if workload is not None and len(workload) > 0:
            filtered = list(workload.filtered_dimensions())
            others = [d for d in table.column_names if d not in filtered]
            self.dimensions = filtered + others
        else:
            self.dimensions = list(table.column_names)

    def _split_dims_for_depth(self, depth: int) -> list[str]:
        """Dimensions subdivided at this depth (rotating window over all dims)."""
        d = len(self.dimensions)
        width = min(d, self.max_split_dimensions)
        start = (depth * width) % d
        return [self.dimensions[(start + i) % d] for i in range(width)]

    def _build_node(
        self,
        table: Table,
        row_ids: np.ndarray,
        depth: int,
        bounds: dict[str, tuple[float, float]],
        leaf_order: list[np.ndarray],
    ) -> _OctreeNode:
        self._num_nodes += 1
        if len(row_ids) <= self.page_size or depth >= self.max_depth:
            return self._make_leaf(bounds, row_ids, leaf_order)

        split_dims = self._split_dims_for_depth(depth)
        # Bucket rows into hyperoctants: one bit per split dimension.
        octant = np.zeros(len(row_ids), dtype=np.int64)
        midpoints = {}
        for bit, dim in enumerate(split_dims):
            low, high = bounds[dim]
            mid = (low + high) / 2.0
            midpoints[dim] = mid
            # ">= mid" keeps the child regions half-open ([low, mid) and
            # [mid, high)), consistent with the intersection test below.
            octant |= (table.values(dim)[row_ids] >= mid).astype(np.int64) << bit
        occupied = np.unique(octant)
        if len(occupied) <= 1:
            # Every point fell into one octant (e.g. constant values); splitting
            # again would recurse forever, so stop here.
            return self._make_leaf(bounds, row_ids, leaf_order)

        node = _OctreeNode(bounds=bounds, split_dimensions=split_dims)
        for child_id in range(1 << len(split_dims)):
            members = row_ids[octant == child_id]
            if len(members) == 0:
                continue
            child_bounds = dict(bounds)
            for bit, dim in enumerate(split_dims):
                low, high = bounds[dim]
                mid = midpoints[dim]
                child_bounds[dim] = (mid, high) if (child_id >> bit) & 1 else (low, mid)
            node.children.append(
                self._build_node(table, members, depth + 1, child_bounds, leaf_order)
            )
        return node

    def _make_leaf(
        self,
        bounds: dict[str, tuple[float, float]],
        row_ids: np.ndarray,
        leaf_order: list[np.ndarray],
    ) -> _OctreeNode:
        node = _OctreeNode(bounds=bounds)
        node.row_start = sum(len(chunk) for chunk in leaf_order)
        node.row_stop = node.row_start + len(row_ids)
        leaf_order.append(row_ids)
        self._leaves.append(node)
        return node

    def _layout_permutation(self, table: Table) -> np.ndarray | None:
        self._leaves = []
        self._num_nodes = 0
        bounds = {
            dim: (float(low), float(high) + 1.0)
            for dim, (low, high) in ((d, table.bounds(d)) for d in table.column_names)
        }
        leaf_order: list[np.ndarray] = []
        self._root = self._build_node(
            table, np.arange(table.num_rows), 0, bounds, leaf_order
        )
        return np.concatenate(leaf_order) if leaf_order else None

    # -- query -------------------------------------------------------------------

    def _node_intersects(self, node: _OctreeNode, query: Query) -> bool:
        for predicate in query.predicates:
            bounds = node.bounds.get(predicate.dimension)
            if bounds is None:
                continue
            low, high = bounds
            if high <= predicate.low or low > predicate.high:
                return False
        return True

    def _collect(self, node: _OctreeNode, query: Query, out: list[RowRange]) -> None:
        if not self._node_intersects(node, query):
            return
        if node.is_leaf:
            if node.row_stop > node.row_start:
                int_bounds = {
                    dim: (int(np.floor(low)), int(np.ceil(high)) - 1)
                    for dim, (low, high) in node.bounds.items()
                }
                exact = containment_exactness(int_bounds, query)
                out.append(RowRange(node.row_start, node.row_stop, exact=exact))
            return
        for child in node.children:
            self._collect(child, query, out)

    def _ranges_for_query(self, query: Query) -> list[RowRange]:
        assert self._root is not None
        ranges: list[RowRange] = []
        self._collect(self._root, query, ranges)
        return ranges

    # -- reporting -----------------------------------------------------------------

    def index_size_bytes(self) -> int:
        num_internal = self._num_nodes - len(self._leaves)
        internal_bytes = num_internal * (16 + 8 * (1 << min(self.max_split_dimensions, 6)))
        leaf_bytes = len(self._leaves) * (16 + 16 * len(self.dimensions))
        return internal_bytes + leaf_bytes

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "page_size": self.page_size,
                "num_nodes": self._num_nodes,
                "num_leaves": len(self._leaves),
            }
        )
        return info
