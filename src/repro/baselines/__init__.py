"""Baseline indexes the paper evaluates Tsunami against (§6.1).

All baselines share the clustered-index contract defined by
:class:`~repro.baselines.base.ClusteredIndex`: ``build`` reorganizes the
table's physical row order, ``execute`` answers a query by scanning contiguous
row ranges through the shared :class:`~repro.storage.scan.ScanExecutor`.

The learned baseline (Flood) lives here too but reuses the grid machinery from
:mod:`repro.core`, matching the paper's note that Flood is evaluated with
Tsunami's cost model and binary-search refinement.
"""

from repro.baselines.base import ClusteredIndex, QueryResult
from repro.baselines.full_scan import FullScanIndex
from repro.baselines.single_dim import SingleDimensionIndex
from repro.baselines.zorder import ZOrderIndex
from repro.baselines.kdtree import KdTreeIndex
from repro.baselines.octree import HyperOctreeIndex
from repro.baselines.gridfile import GridFileIndex
from repro.baselines.rtree import RTreeIndex
from repro.baselines.flood import FloodIndex

__all__ = [
    "ClusteredIndex",
    "QueryResult",
    "FullScanIndex",
    "SingleDimensionIndex",
    "ZOrderIndex",
    "KdTreeIndex",
    "HyperOctreeIndex",
    "GridFileIndex",
    "RTreeIndex",
    "FloodIndex",
]
