"""Command-line front door to the library.

``python -m repro.cli`` lets a user exercise the whole pipeline — get data in,
build an optimized index, run SQL against it, inspect plans, and snapshot the
result — without writing any Python:

* ``inspect``  — show a dataset's (or CSV file's) schema and basic statistics.
* ``build``    — build an index over a generated dataset or a CSV file and
  save it as a snapshot directory (see :mod:`repro.storage.persistence`).
* ``query``    — run a SQL statement against a snapshot (or build on the fly),
  printing the answer and the work done.
* ``explain``  — print the physical plan an index would use for a statement.

Examples::

    python -m repro.cli inspect --dataset taxi --rows 50000
    python -m repro.cli build --dataset tpch --rows 100000 --index tsunami \
        --snapshot /tmp/tpch_snapshot
    python -m repro.cli query --snapshot /tmp/tpch_snapshot \
        --sql "SELECT COUNT(*) FROM lineitem WHERE quantity < 10"
    python -m repro.cli explain --snapshot /tmp/tpch_snapshot \
        --sql "SELECT COUNT(*) FROM lineitem WHERE quantity < 10"
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.baselines import (
    FloodIndex,
    FullScanIndex,
    GridFileIndex,
    HyperOctreeIndex,
    KdTreeIndex,
    RTreeIndex,
    SingleDimensionIndex,
    ZOrderIndex,
)
from repro.baselines.base import ClusteredIndex
from repro.common.errors import ReproError
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.datasets import DATASETS, load_dataset
from repro.query.profile import WorkloadProfile
from repro.query.sql import parse_query
from repro.query.workload import Workload
from repro.storage.csv_io import read_csv
from repro.storage.persistence import load_index, save_index
from repro.storage.table import Table

#: Index name (CLI value) -> factory taking a page size.
INDEX_FACTORIES = {
    "tsunami": lambda page_size: TsunamiIndex(TsunamiConfig(optimizer_iterations=2)),
    "flood": lambda page_size: FloodIndex(optimizer_iterations=2),
    "kd-tree": lambda page_size: KdTreeIndex(page_size=page_size),
    "z-order": lambda page_size: ZOrderIndex(page_size=page_size),
    "hyperoctree": lambda page_size: HyperOctreeIndex(page_size=page_size),
    "grid-file": lambda page_size: GridFileIndex(page_size=page_size),
    "r-tree": lambda page_size: RTreeIndex(page_size=page_size),
    "single-dim": lambda page_size: SingleDimensionIndex(),
    "full-scan": lambda page_size: FullScanIndex(),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Build and query learned multi-dimensional indexes (Tsunami reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_source_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--dataset",
            choices=sorted(DATASETS),
            help="generate one of the paper's stand-in datasets",
        )
        subparser.add_argument("--csv", type=Path, help="ingest a CSV file instead")
        subparser.add_argument("--rows", type=int, default=50_000, help="rows to generate")
        subparser.add_argument(
            "--queries", type=int, default=50, help="queries per type for optimization"
        )
        subparser.add_argument("--seed", type=int, default=0, help="generator seed")

    inspect_parser = subparsers.add_parser("inspect", help="show a table's schema and statistics")
    add_source_arguments(inspect_parser)

    build_parser_ = subparsers.add_parser("build", help="build an index and snapshot it")
    add_source_arguments(build_parser_)
    build_parser_.add_argument(
        "--index", choices=sorted(INDEX_FACTORIES), default="tsunami", help="index to build"
    )
    build_parser_.add_argument("--page-size", type=int, default=2048, help="baseline page size")
    build_parser_.add_argument(
        "--snapshot", type=Path, required=True, help="directory to write the snapshot to"
    )

    for name, help_text in (
        ("query", "run a SQL statement and print the answer"),
        ("explain", "print the physical plan for a SQL statement"),
    ):
        sql_parser = subparsers.add_parser(name, help=help_text)
        sql_parser.add_argument("--snapshot", type=Path, help="snapshot directory to load")
        add_source_arguments(sql_parser)
        sql_parser.add_argument(
            "--index", choices=sorted(INDEX_FACTORIES), default="tsunami",
            help="index to build when no snapshot is given",
        )
        sql_parser.add_argument("--page-size", type=int, default=2048, help="baseline page size")
        sql_parser.add_argument("--sql", required=True, help="SQL statement to run")

    return parser


def _load_table(args: argparse.Namespace) -> tuple[Table, Workload | None]:
    """Materialise the table (and optimization workload) the arguments describe."""
    if args.csv is not None and args.dataset is not None:
        raise ReproError("pass either --dataset or --csv, not both")
    if args.csv is not None:
        return read_csv(args.csv, max_rows=args.rows), None
    if args.dataset is not None:
        table, workload = load_dataset(
            args.dataset,
            num_rows=args.rows,
            queries_per_type=args.queries,
            seed=args.seed,
        )
        return table, workload
    raise ReproError("one of --dataset or --csv is required")


def _build_index(args: argparse.Namespace) -> ClusteredIndex:
    """Build the requested index over the requested data."""
    table, workload = _load_table(args)
    factory = INDEX_FACTORIES[args.index]
    index = factory(args.page_size)
    start = time.perf_counter()
    index.build(table, workload)
    seconds = time.perf_counter() - start
    print(
        f"built {args.index} over {table.num_rows} rows in {seconds:.2f}s "
        f"({index.index_size_bytes() / 1024:.1f} KiB of index structure)"
    )
    return index


def _obtain_index(args: argparse.Namespace) -> ClusteredIndex:
    """Load the snapshot if one is given, otherwise build an index on the fly."""
    if args.snapshot is not None and (Path(args.snapshot) / "index.pkl").exists():
        index = load_index(args.snapshot)
        print(f"loaded snapshot from {args.snapshot} ({index.name}, {index.table.num_rows} rows)")
        return index
    return _build_index(args)


def _command_inspect(args: argparse.Namespace) -> int:
    table, workload = _load_table(args)
    print(f"table {table.name!r}: {table.num_rows} rows, {table.num_dimensions} dimensions, "
          f"{table.size_bytes() / 2**20:.2f} MiB")
    for name in table.column_names:
        column = table.column(name)
        kind = "string" if column.dictionary else ("float" if column.scaler else "int")
        low, high = table.bounds(name)
        print(f"  {name:20s} {kind:7s} storage range [{low}, {high}]")
    if workload is not None:
        print(workload.statistics(table).describe())
        print()
        print(WorkloadProfile.build(table, workload).describe())
    return 0


def _command_build(args: argparse.Namespace) -> int:
    index = _build_index(args)
    save_index(index, args.snapshot)
    print(f"snapshot written to {args.snapshot}")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    index = _obtain_index(args)
    query = parse_query(args.sql, index.table)
    start = time.perf_counter()
    result = index.execute(query)
    seconds = time.perf_counter() - start
    print(f"{result.value}")
    print(
        f"-- {seconds * 1e3:.2f} ms, scanned {result.stats.points_scanned} rows in "
        f"{result.stats.cell_ranges} cell ranges, {result.stats.rows_matched} matched"
    )
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    index = _obtain_index(args)
    query = parse_query(args.sql, index.table)
    plan = index.explain(query)
    for key, value in plan.items():
        if isinstance(value, float):
            value = f"{value:.4f}"
        print(f"{key:25s} {value}")
    return 0


_COMMANDS = {
    "inspect": _command_inspect,
    "build": _command_build,
    "query": _command_query,
    "explain": _command_explain,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
