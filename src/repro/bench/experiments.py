"""One driver per paper table/figure (§6).

Every function here regenerates the rows or series of one evaluation artifact
at a configurable (much smaller) scale.  The ``benchmarks/`` directory wraps
these drivers with pytest-benchmark; the examples call them directly.

Scale knobs default to laptop-friendly values and can be overridden with the
environment variables ``REPRO_BENCH_ROWS`` and ``REPRO_BENCH_QUERIES`` (rows
per dataset and queries per query type respectively).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.baselines import FloodIndex, KdTreeIndex, ZOrderIndex
from repro.bench.harness import (
    IndexMeasurement,
    default_index_factories,
    expected_answers,
    learned_index_factories,
    measure_index,
    run_comparison,
)
from repro.bench.report import format_series, format_table, relative_factors
from repro.core.augmented_grid import AugmentedGrid
from repro.core.cost_model import CostModel
from repro.core.optimizer import (
    AdaptiveGradientDescent,
    BlackBoxOptimizer,
    GradientDescentOnly,
)
from repro.core.tsunami import TsunamiIndex
from repro.core.variants import AugmentedGridOnlyIndex, GridTreeOnlyIndex
from repro.datasets import (
    DATASETS,
    load_dataset,
    make_correlated_dataset,
    make_uniform_dataset,
    synthetic_scaling_workload,
    synthetic_templates,
)
from repro.datasets.tpch import make_tpch_dataset, tpch_shifted_templates, tpch_templates
from repro.datasets.workload_gen import generate_workload, scale_template_selectivities
from repro.storage.scan import ScanExecutor

ALL_DATASETS = ("tpch", "taxi", "perfmon", "stocks")


def bench_rows(default: int = 60_000) -> int:
    """Rows per dataset, overridable via ``REPRO_BENCH_ROWS``."""
    return int(os.environ.get("REPRO_BENCH_ROWS", default))


def bench_queries_per_type(default: int = 30) -> int:
    """Queries per query type, overridable via ``REPRO_BENCH_QUERIES``."""
    return int(os.environ.get("REPRO_BENCH_QUERIES", default))


@dataclass
class ExperimentResult:
    """A generic experiment outcome: a report string plus the raw data behind it."""

    name: str
    report: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.name} ==\n{self.report}"


# ---------------------------------------------------------------------------
# Table 3 — dataset and query characteristics
# ---------------------------------------------------------------------------


def experiment_table3(
    num_rows: int | None = None, queries_per_type: int | None = None, seed: int = 0
) -> ExperimentResult:
    """Regenerate Table 3: rows, query types, dimensions, and size per dataset."""
    num_rows = num_rows or bench_rows()
    queries_per_type = queries_per_type or bench_queries_per_type()
    rows = []
    data = {}
    for name in ALL_DATASETS:
        table, workload = load_dataset(
            name, num_rows=num_rows, queries_per_type=queries_per_type, seed=seed
        )
        stats = workload.statistics(table)
        rows.append(
            {
                "dataset": name,
                "records": table.num_rows,
                "query types": stats.num_query_types,
                "dimensions": table.num_dimensions,
                "size (MiB)": round(table.size_bytes() / 2**20, 2),
                "selectivity": f"{stats.min_selectivity:.3%}..{stats.max_selectivity:.3%}",
                "avg selectivity": f"{stats.avg_selectivity:.3%}",
            }
        )
        data[name] = {"table": stats, "paper_rows": DATASETS[name].paper_rows}
    return ExperimentResult("Table 3: dataset characteristics", format_table(rows), data)


# ---------------------------------------------------------------------------
# Table 4 — index statistics after optimization
# ---------------------------------------------------------------------------


def experiment_table4(
    num_rows: int | None = None,
    queries_per_type: int | None = None,
    datasets: tuple[str, ...] = ALL_DATASETS,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Table 4: Grid Tree shape, per-region statistics, and cell counts."""
    num_rows = num_rows or bench_rows()
    queries_per_type = queries_per_type or bench_queries_per_type()
    rows = []
    data = {}
    for name in datasets:
        table, workload = load_dataset(
            name, num_rows=num_rows, queries_per_type=queries_per_type, seed=seed
        )
        tsunami = TsunamiIndex()
        tsunami.build(table, workload)
        flood = FloodIndex()
        flood.build(table, workload)
        stats = tsunami.describe()
        rows.append(
            {
                "dataset": name,
                "GT nodes": stats["num_grid_tree_nodes"],
                "GT depth": stats["grid_tree_depth"],
                "regions": stats["num_leaf_regions"],
                "min pts/region": stats["min_points_per_region"],
                "median pts/region": stats["median_points_per_region"],
                "max pts/region": stats["max_points_per_region"],
                "avg FMs": round(stats["avg_functional_mappings_per_region"], 2),
                "avg CCDFs": round(stats["avg_conditional_cdfs_per_region"], 2),
                "tsunami cells": stats["total_grid_cells"],
                "flood cells": flood.num_cells,
            }
        )
        data[name] = {"tsunami": stats, "flood_cells": flood.num_cells}
    return ExperimentResult("Table 4: index statistics after optimization", format_table(rows), data)


# ---------------------------------------------------------------------------
# Fig. 7 / Fig. 8 — overall query throughput and index size
# ---------------------------------------------------------------------------


def experiment_overall(
    num_rows: int | None = None,
    queries_per_type: int | None = None,
    datasets: tuple[str, ...] = ALL_DATASETS,
    include_nonlearned: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Fig. 7 (query throughput) and Fig. 8 (index size) in one pass."""
    num_rows = num_rows or bench_rows()
    queries_per_type = queries_per_type or bench_queries_per_type()
    factories = default_index_factories() if include_nonlearned else learned_index_factories()
    all_rows = []
    data: dict[str, list[IndexMeasurement]] = {}
    for name in datasets:
        table, workload = load_dataset(
            name, num_rows=num_rows, queries_per_type=queries_per_type, seed=seed
        )
        measurements = run_comparison(table, workload, factories, dataset_name=name)
        data[name] = measurements
        throughput = {m.index_name: m.queries_per_second for m in measurements}
        sizes = {m.index_name: float(m.index_size_bytes) for m in measurements}
        speedups = relative_factors(throughput, reference="flood") if "flood" in throughput else {}
        for measurement in measurements:
            row = measurement.as_row()
            row["vs flood"] = (
                f"{speedups.get(measurement.index_name, float('nan')):.2f}x" if speedups else "-"
            )
            all_rows.append(row)
        _ = sizes
    return ExperimentResult(
        "Fig. 7 / Fig. 8: overall throughput and index size", format_table(all_rows), data
    )


# ---------------------------------------------------------------------------
# Fig. 9 — adaptability to workload shift and index creation time
# ---------------------------------------------------------------------------


def experiment_adaptability(
    num_rows: int | None = None,
    queries_per_type: int | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Fig. 9a: throughput before the shift, after it, and after re-optimizing."""
    num_rows = num_rows or bench_rows()
    queries_per_type = queries_per_type or bench_queries_per_type()
    table = make_tpch_dataset(num_rows=num_rows, seed=seed)
    original = generate_workload(
        table, tpch_templates(queries_per_type), seed=1, name="tpch_original"
    )
    shifted = generate_workload(
        table, tpch_shifted_templates(queries_per_type), seed=2, name="tpch_shifted"
    )

    tsunami = TsunamiIndex()
    before = measure_index(tsunami, table, original, dataset_name="tpch")

    # The workload changes "at midnight": the old layout now serves new queries.
    expected_shifted = expected_answers(table, shifted)
    degraded_seconds = 0.0
    degraded_scanned = 0
    correct = True
    for position, query in enumerate(shifted):
        start = time.perf_counter()
        result = tsunami.execute(query)
        degraded_seconds += time.perf_counter() - start
        degraded_scanned += result.stats.points_scanned
        correct &= result.value == expected_shifted[position]

    reoptimize_seconds = tsunami.reoptimize(shifted)
    after = measure_index(tsunami, table, shifted, dataset_name="tpch", expected=expected_shifted)

    rows = [
        {
            "phase": "original workload (optimized)",
            "queries/s": round(before.queries_per_second, 1),
            "avg scanned": round(before.avg_points_scanned, 1),
            "correct": before.correct,
        },
        {
            "phase": "after shift (stale layout)",
            "queries/s": round(len(shifted) / degraded_seconds, 1) if degraded_seconds else float("inf"),
            "avg scanned": round(degraded_scanned / max(len(shifted), 1), 1),
            "correct": correct,
        },
        {
            "phase": f"after re-optimization ({reoptimize_seconds:.1f}s)",
            "queries/s": round(after.queries_per_second, 1),
            "avg scanned": round(after.avg_points_scanned, 1),
            "correct": after.correct,
        },
    ]
    data = {
        "before": before,
        "degraded_avg_scanned": degraded_scanned / max(len(shifted), 1),
        "degraded_avg_seconds": degraded_seconds / max(len(shifted), 1),
        "reoptimize_seconds": reoptimize_seconds,
        "after": after,
    }
    return ExperimentResult("Fig. 9a: adaptability to workload shift", format_table(rows), data)


def experiment_creation_time(
    num_rows: int | None = None,
    queries_per_type: int | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Fig. 9b: per-index build time split into sorting vs optimization."""
    num_rows = num_rows or bench_rows()
    queries_per_type = queries_per_type or bench_queries_per_type()
    table, workload = load_dataset(
        "tpch", num_rows=num_rows, queries_per_type=queries_per_type, seed=seed
    )
    factories = default_index_factories()
    rows = []
    data = {}
    for name, factory in factories.items():
        index = factory()
        index.build(table, workload)
        rows.append(
            {
                "index": name,
                "sort (s)": round(index.build_report.sort_seconds, 3),
                "optimize (s)": round(index.build_report.optimize_seconds, 3),
                "total (s)": round(index.build_report.total_seconds, 3),
            }
        )
        data[name] = index.build_report
    return ExperimentResult("Fig. 9b: index creation time", format_table(rows), data)


# ---------------------------------------------------------------------------
# Fig. 10 — scaling with dimensionality (uncorrelated vs correlated)
# ---------------------------------------------------------------------------


def experiment_dimensions(
    num_rows: int | None = None,
    queries_per_type: int | None = None,
    dimension_counts: tuple[int, ...] = (4, 8, 12),
    correlated: bool = True,
    include_nonlearned: bool = True,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate one panel of Fig. 10: throughput vs number of dimensions."""
    num_rows = num_rows or bench_rows()
    queries_per_type = queries_per_type or bench_queries_per_type()
    factories = (
        {
            **learned_index_factories(),
            "kd-tree": lambda: KdTreeIndex(page_size=2048),
            "z-order": lambda: ZOrderIndex(page_size=2048),
        }
        if include_nonlearned
        else learned_index_factories()
    )
    series: dict[str, list[float]] = {name: [] for name in factories}
    data = {}
    for dims in dimension_counts:
        if correlated:
            table = make_correlated_dataset(num_rows=num_rows, num_dimensions=dims, seed=seed)
        else:
            table = make_uniform_dataset(num_rows=num_rows, num_dimensions=dims, seed=seed)
        workload = synthetic_scaling_workload(
            table, queries_per_type=queries_per_type, seed=seed + 1
        )
        measurements = run_comparison(table, workload, factories, dataset_name=table.name)
        data[dims] = measurements
        for measurement in measurements:
            series[measurement.index_name].append(measurement.queries_per_second)
    kind = "correlated" if correlated else "uncorrelated"
    report = format_series("dimensions", list(dimension_counts), series)
    return ExperimentResult(f"Fig. 10: throughput vs dimensionality ({kind})", report, data)


# ---------------------------------------------------------------------------
# Fig. 11 — scaling with dataset size and query selectivity
# ---------------------------------------------------------------------------


def experiment_dataset_size(
    row_counts: tuple[int, ...] | None = None,
    queries_per_type: int | None = None,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Fig. 11a: throughput vs dataset size on the TPC-H stand-in."""
    queries_per_type = queries_per_type or bench_queries_per_type()
    if row_counts is None:
        base = bench_rows()
        row_counts = (base // 4, base // 2, base)
    factories = {
        **learned_index_factories(),
        "kd-tree": lambda: KdTreeIndex(page_size=2048),
    }
    series: dict[str, list[float]] = {name: [] for name in factories}
    data = {}
    for rows in row_counts:
        table, workload = load_dataset(
            "tpch", num_rows=rows, queries_per_type=queries_per_type, seed=seed
        )
        measurements = run_comparison(table, workload, factories, dataset_name=f"tpch_{rows}")
        data[rows] = measurements
        for measurement in measurements:
            series[measurement.index_name].append(measurement.queries_per_second)
    report = format_series("rows", list(row_counts), series)
    return ExperimentResult("Fig. 11a: throughput vs dataset size", report, data)


def experiment_selectivity(
    num_rows: int | None = None,
    queries_per_type: int | None = None,
    selectivity_factors: tuple[float, ...] = (0.25, 1.0, 4.0),
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Fig. 11b: throughput vs query selectivity on the correlated synthetic data."""
    num_rows = num_rows or bench_rows()
    queries_per_type = queries_per_type or bench_queries_per_type()
    table = make_correlated_dataset(num_rows=num_rows, num_dimensions=8, seed=seed)
    base_templates = synthetic_templates(
        num_dimensions=8, queries_per_type=queries_per_type
    )
    factories = learned_index_factories()
    series: dict[str, list[float]] = {name: [] for name in factories}
    selectivities = []
    data = {}
    for factor in selectivity_factors:
        templates = scale_template_selectivities(base_templates, factor)
        workload = generate_workload(table, templates, seed=seed + 3, name=f"sel_{factor}")
        stats = workload.statistics(table)
        selectivities.append(round(stats.avg_selectivity, 6))
        measurements = run_comparison(table, workload, factories, dataset_name=f"sel_{factor}")
        data[factor] = {"measurements": measurements, "avg_selectivity": stats.avg_selectivity}
        for measurement in measurements:
            series[measurement.index_name].append(measurement.queries_per_second)
    report = format_series("avg selectivity", selectivities, series)
    return ExperimentResult("Fig. 11b: throughput vs query selectivity", report, data)


# ---------------------------------------------------------------------------
# Fig. 12a — component drill-down
# ---------------------------------------------------------------------------


def experiment_components(
    num_rows: int | None = None,
    queries_per_type: int | None = None,
    datasets: tuple[str, ...] = ("tpch", "taxi"),
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Fig. 12a: Flood vs Augmented-Grid-only vs Grid-Tree-only vs Tsunami."""
    num_rows = num_rows or bench_rows()
    queries_per_type = queries_per_type or bench_queries_per_type()
    factories = {
        "flood": FloodIndex,
        "augmented-grid-only": AugmentedGridOnlyIndex,
        "grid-tree-only": GridTreeOnlyIndex,
        "tsunami": TsunamiIndex,
    }
    rows = []
    data = {}
    for name in datasets:
        table, workload = load_dataset(
            name, num_rows=num_rows, queries_per_type=queries_per_type, seed=seed
        )
        measurements = run_comparison(table, workload, factories, dataset_name=name)
        data[name] = measurements
        throughput = {m.index_name: m.queries_per_second for m in measurements}
        factors = relative_factors(throughput, reference="flood")
        for measurement in measurements:
            rows.append(
                {
                    "dataset": name,
                    "variant": measurement.index_name,
                    "queries/s": round(measurement.queries_per_second, 1),
                    "avg scanned": round(measurement.avg_points_scanned, 1),
                    "vs flood": f"{factors[measurement.index_name]:.2f}x",
                    "correct": measurement.correct,
                }
            )
    return ExperimentResult("Fig. 12a: component drill-down", format_table(rows), data)


# ---------------------------------------------------------------------------
# Fig. 12b — optimization methods and cost-model accuracy
# ---------------------------------------------------------------------------


def experiment_optimizers(
    num_rows: int | None = None,
    queries_per_type: int | None = None,
    datasets: tuple[str, ...] = ("tpch",),
    blackbox_iterations: int = 10,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate Fig. 12b: AGD vs GD vs Black-Box vs AGD-NI, predicted vs actual cost."""
    num_rows = num_rows or bench_rows()
    queries_per_type = queries_per_type or bench_queries_per_type()
    rows = []
    data = {}
    for name in datasets:
        table, workload = load_dataset(
            name, num_rows=num_rows, queries_per_type=queries_per_type, seed=seed
        )
        methods = {
            "AGD": AdaptiveGradientDescent(),
            "GD": GradientDescentOnly(),
            "Black Box": BlackBoxOptimizer(iterations=blackbox_iterations),
            "AGD-NI": AdaptiveGradientDescent(naive_init=True),
        }
        data[name] = {}
        for method_name, optimizer in methods.items():
            result = optimizer.optimize(table, workload)
            grid = AugmentedGrid(result.config)
            permutation = grid.fit(table)
            table.reorder(permutation)
            # Measure per-query wall-clock time and plan features on the fully
            # built grid, then fit the cost-model weights to the measurements
            # to quantify the model's relative error (the Fig. 12b error bars).
            executor = ScanExecutor(table)
            per_query_seconds = []
            features = []
            for query in workload:
                _, feature = grid.plan(query)
                features.append(feature)
                ranges = grid.ranges_for_query(query)
                start = time.perf_counter()
                executor.execute(
                    ranges,
                    query.filters(),
                    aggregate=query.aggregate,
                    aggregate_column=query.aggregate_column,
                )
                per_query_seconds.append(time.perf_counter() - start)
            avg_actual = sum(per_query_seconds) / max(len(per_query_seconds), 1)
            calibrated = CostModel.calibrate(features, per_query_seconds)
            model_error = calibrated.relative_error(features, per_query_seconds)
            rows.append(
                {
                    "dataset": name,
                    "method": method_name,
                    "predicted cost": round(result.predicted_cost, 1),
                    "actual avg query (ms)": round(avg_actual * 1e3, 3),
                    "cost model error": f"{model_error:.1%}",
                    "evaluations": result.evaluations,
                    "skeleton": result.config.skeleton.describe(),
                }
            )
            data[name][method_name] = {
                "result": result,
                "actual_avg_seconds": avg_actual,
                "per_query_seconds": per_query_seconds,
                "features": features,
                "calibrated": calibrated,
                "model_error": model_error,
            }
    return ExperimentResult("Fig. 12b: optimization method comparison", format_table(rows), data)
