"""Build (table, workload, stream) triples from a :class:`ScenarioConfig`.

This is the single place benchmark data comes from: every axis of the
scenario matrix — dataset family, dimensionality, zipf skew, selectivity,
point-lookup fraction, categorical hybrid predicates, read/write mix, and
named drift schedules — is realized here, so no benchmark script carries its
own generation logic.

Everything is derived from the scenario's one ``seed`` through
:func:`repro.common.rng.spawn_rngs`: child 0 generates the dataset, child 1
places the template filters, child 2 orders the serving stream, child 3
draws the write batches, and child 4 seeds the fault plan.  Two calls with
the same config therefore produce byte-identical query streams (pinned by
``tests/test_bench_scenario.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.scenario import ScenarioConfig
from repro.common.errors import ConfigError
from repro.common.faults import FaultPlan, FaultSpec
from repro.common.rng import spawn_rngs
from repro.core.categorical import CategoricalReordering
from repro.datasets.registry import load_dataset
from repro.datasets.synthetic import make_correlated_dataset, make_uniform_dataset
from repro.datasets.workload_gen import (
    EqualitySpec,
    QueryTemplate,
    RangeSpec,
    generate_workload,
)
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.column import Column
from repro.storage.dictionary import DictionaryEncoder
from repro.storage.table import Table


@dataclass
class WriteEvent:
    """An insert batch scheduled at ``position`` in the serving stream."""

    position: int
    rows: list[dict]


@dataclass
class ScenarioData:
    """Everything a runner needs to measure one (dimensionality, config) cell."""

    table: Table
    #: The template pool the index-under-test is optimized for.
    build_workload: Workload
    #: The serving stream (pool queries repeated per the skew/drift axes).
    stream: list[Query]
    #: Insert batches interleaved into the stream (empty when read-only).
    writes: list[WriteEvent] = field(default_factory=list)
    #: Seed for deterministic fault plans (derived from the scenario seed).
    fault_seed: int = 0
    #: Applied categorical reordering summary (None when the axis is off).
    categorical: dict | None = None


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------


def _make_correlated_xyz(
    num_rows: int, domain: int, rng: np.random.Generator
) -> Table:
    """The skewed x/y/z family every serving tracker uses: y tracks 3x."""
    x = rng.integers(0, domain, num_rows)
    y = x * 3 + rng.integers(-500, 501, num_rows)
    z = rng.integers(0, max(domain // 20, 2), num_rows)
    return Table.from_arrays("scenario_xyz", {"x": x, "y": y, "z": z})


def _add_categorical_column(
    table: Table, config, rng: np.random.Generator
) -> Table:
    """Append a dictionary-encoded column with zipf-ish value frequencies."""
    values = [f"cat_{i:04d}" for i in range(config.cardinality)]
    weights = 1.0 / np.arange(1, config.cardinality + 1) ** config.skew
    weights /= weights.sum()
    codes = rng.choice(config.cardinality, size=table.num_rows, p=weights)
    dictionary = DictionaryEncoder.from_ordered_values(values)
    columns = [table.column(name) for name in table.column_names]
    columns.append(
        Column(config.dimension, codes.astype(np.int64), dictionary=dictionary)
    )
    return Table(table.name, columns)


def build_table(
    config: ScenarioConfig, num_dimensions: int, rng: np.random.Generator
) -> Table:
    """Build the scenario's table for one point of the dimensionality sweep."""
    dataset = config.dataset
    if dataset.source == "correlated_xyz":
        table = _make_correlated_xyz(dataset.num_rows, dataset.domain, rng)
    elif dataset.source == "uniform":
        table = make_uniform_dataset(dataset.num_rows, num_dimensions, seed=rng)
    elif dataset.source == "correlated":
        table = make_correlated_dataset(dataset.num_rows, num_dimensions, seed=rng)
    elif dataset.source == "registry":
        table, _ = load_dataset(
            dataset.registry_name, num_rows=dataset.num_rows, queries_per_type=1, seed=rng
        )
    else:  # pragma: no cover - blocked by ScenarioConfig.validate
        raise ConfigError(f"unknown dataset source {dataset.source!r}")
    if dataset.categorical is not None:
        table = _add_categorical_column(table, dataset.categorical, rng)
    return table


# ---------------------------------------------------------------------------
# Templates
# ---------------------------------------------------------------------------

#: Width (in quantile space) of each template's placement region — templates
#: concentrate on a slice of the data space, which is what makes the
#: workloads skewed (mirrors the trackers' localized template pools).
_REGION_WIDTH = 0.25


def _numeric_dimensions(table: Table, config: ScenarioConfig) -> list[str]:
    categorical = config.dataset.categorical
    exclude = categorical.dimension if categorical is not None else None
    return [name for name in table.column_names if name != exclude]


def _template_roles(config: ScenarioConfig) -> list[str]:
    """Assign each template a role per the axis fractions, deterministically."""
    workload = config.workload
    total = workload.num_templates
    num_point = int(round(workload.point_lookup_fraction * total))
    num_categorical = int(round(workload.categorical_fraction * total))
    num_point = min(num_point, total)
    num_categorical = min(num_categorical, total - num_point)
    remaining = {
        "range": total - num_point - num_categorical,
        "point": num_point,
        "categorical": num_categorical,
    }
    # Interleave the roles so a truncated pool still sees every axis.
    interleaved: list[str] = []
    while len(interleaved) < total:
        for role in ("range", "point", "categorical"):
            if remaining[role] > 0:
                interleaved.append(role)
                remaining[role] -= 1
    return interleaved


def build_templates(
    table: Table,
    config: ScenarioConfig,
    rng: np.random.Generator,
    phase: int = 0,
    phases: int = 1,
) -> list[QueryTemplate]:
    """One :class:`QueryTemplate` per pool slot, honouring every workload axis.

    ``phase`` shifts the placement regions for the ``step_shift`` drift
    schedule: phase ``p`` of ``n`` concentrates its templates on the ``p``-th
    slice of the quantile space, so successive phases move the hot region.
    """
    workload = config.workload
    numeric = _numeric_dimensions(table, config)
    dims_per_query = min(workload.dims_per_query, len(numeric))
    categorical = config.dataset.categorical
    templates = []
    for position, role in enumerate(_template_roles(config)):
        if phases > 1:
            base = (phase / phases) * (1.0 - _REGION_WIDTH)
            start = base + float(rng.uniform(0, _REGION_WIDTH / phases))
        else:
            start = float(rng.uniform(0.0, 1.0 - _REGION_WIDTH))
        region = (start, start + _REGION_WIDTH)
        chosen = [numeric[(position + j) % len(numeric)] for j in range(dims_per_query)]
        filters: dict = {}
        if role == "point":
            for dim in chosen:
                filters[dim] = EqualitySpec(centre_region=region)
        else:
            for dim in chosen:
                filters[dim] = RangeSpec(workload.selectivity, centre_region=region)
            if role == "categorical":
                assert categorical is not None  # enforced by config validation
                filters[categorical.dimension] = EqualitySpec(centre_region=region)
        templates.append(QueryTemplate(f"{role}_{phase}_{position}", filters, count=1))
    return templates


# ---------------------------------------------------------------------------
# Streams
# ---------------------------------------------------------------------------


def _draw_stream_indices(
    num_queries: int,
    num_templates: int,
    zipf_theta: float | None,
    rng: np.random.Generator,
) -> np.ndarray:
    if zipf_theta is None:
        return rng.integers(0, num_templates, num_queries)
    return (rng.zipf(zipf_theta, size=num_queries) - 1) % num_templates


def _build_pools(
    table: Table, config: ScenarioConfig, template_rng: np.random.Generator
) -> list[Workload]:
    """One query pool per drift phase (a single pool when drift is off)."""
    drift = config.workload.drift
    phases = drift.phases if drift.schedule == "step_shift" else 1
    pools = []
    for phase in range(phases):
        templates = build_templates(
            table, config, template_rng, phase=phase, phases=phases
        )
        pools.append(
            generate_workload(
                table, templates, seed=template_rng, name=f"pool_phase{phase}"
            )
        )
    return pools


def _build_stream(
    pools: list[Workload], config: ScenarioConfig, rng: np.random.Generator
) -> list[Query]:
    workload = config.workload
    drift = workload.drift
    if drift.schedule == "step_shift":
        # Each phase draws from its own (shifted) pool.
        stream: list[Query] = []
        per_phase = max(workload.num_queries // len(pools), 1)
        for phase, pool in enumerate(pools):
            count = (
                workload.num_queries - per_phase * (len(pools) - 1)
                if phase == len(pools) - 1
                else per_phase
            )
            queries = list(pool)
            indices = _draw_stream_indices(
                count, len(queries), workload.zipf_theta, rng
            )
            stream.extend(queries[int(i)] for i in indices)
        return stream[: workload.num_queries]
    queries = list(pools[0])
    indices = _draw_stream_indices(
        workload.num_queries, len(queries), workload.zipf_theta, rng
    )
    if drift.schedule == "rotating_hotspot":
        # Rotate which templates are zipf-hot in each phase: the pool is
        # unchanged but the popularity ranking shifts, which is drift the
        # detector should notice without any new query shapes.
        per_phase = max(workload.num_queries // drift.phases, 1)
        shift = max(len(queries) // drift.phases, 1)
        indices = np.array(
            [
                (int(index) + (position // per_phase) * shift) % len(queries)
                for position, index in enumerate(indices)
            ]
        )
    return [queries[int(i)] for i in indices]


# ---------------------------------------------------------------------------
# Writes
# ---------------------------------------------------------------------------


def _build_writes(
    table: Table, config: ScenarioConfig, rng: np.random.Generator
) -> list[WriteEvent]:
    writes = config.workload.writes
    if writes is None:
        return []
    # A write event after every `interval` queries makes write events a
    # `write_fraction` share of all operations.
    interval = max(int(round((1.0 - writes.write_fraction) / writes.write_fraction)), 1)
    categorical = config.dataset.categorical
    bounds = {}
    for name in table.column_names:
        if categorical is not None and name == categorical.dimension:
            bounds[name] = (0, categorical.cardinality - 1)
        else:
            bounds[name] = table.bounds(name)
    events = []
    for position in range(interval, config.workload.num_queries + 1, interval):
        columns = {
            name: rng.integers(low, high + 1, writes.rows_per_write)
            for name, (low, high) in bounds.items()
        }
        rows = [
            {name: int(values[i]) for name, values in columns.items()}
            for i in range(writes.rows_per_write)
        ]
        events.append(WriteEvent(position=position, rows=rows))
    return events


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_scenario_data(config: ScenarioConfig, num_dimensions: int) -> ScenarioData:
    """Materialize one cell of the scenario matrix, fully seed-threaded."""
    dataset_rng, template_rng, stream_rng, write_rng, fault_rng = spawn_rngs(
        config.seed, 5
    )
    table = build_table(config, num_dimensions, dataset_rng)
    pools = _build_pools(table, config, template_rng)

    categorical_summary = None
    if config.workload.reorder_categorical:
        assert config.dataset.categorical is not None
        dimension = config.dataset.categorical.dimension
        reordering = CategoricalReordering.fit(table, dimension, pools[0])
        table = reordering.apply_to_table(table)
        pools = [reordering.rewrite_workload(pool) for pool in pools]
        categorical_summary = reordering.describe()

    stream = _build_stream(pools, config, stream_rng)
    writes = _build_writes(table, config, write_rng)
    return ScenarioData(
        table=table,
        build_workload=pools[0],
        stream=stream,
        writes=writes,
        fault_seed=int(fault_rng.integers(0, 2**31 - 1)),
        categorical=categorical_summary,
    )


def build_fault_plan(config: ScenarioConfig, data: ScenarioData) -> FaultPlan | None:
    """The scenario's seeded fault plan (None when the faults section is absent)."""
    faults = config.faults
    if faults is None:
        return None
    specs = []
    if faults.error_probability > 0:
        specs.append(
            FaultSpec(
                site="shard.execute", kind="error", probability=faults.error_probability
            )
        )
    if faults.delay_probability > 0:
        specs.append(
            FaultSpec(
                site="shard.execute",
                kind="delay",
                probability=faults.delay_probability,
                delay_seconds=faults.delay_seconds,
            )
        )
    return FaultPlan(specs, seed=data.fault_seed)
