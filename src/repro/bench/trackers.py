"""The five serving perf trackers, config-driven.

Each tracker used to live as a standalone script under ``benchmarks/``; the
scripts are now thin wrappers that load a ``kind: "tracker"`` config from
``benchmarks/configs/`` and call :func:`tracker_main`.  The measurement
bodies moved here unchanged — same seeds, same scales, same report keys, and
the same ``--smoke`` gates — so the historical ``BENCH_*.json`` shapes remain
byte-compatible while dataset/workload generation is shared instead of being
copy-pasted per script.

Shared generators (the only place tracker data comes from):

* :func:`make_linear_dataset` — the skewed x/y/z family (y tracks 3x) every
  serving tracker measures on; per-tracker name and seed come from the
  config.
* :func:`make_template_stream` — a template pool plus a zipf-repeated
  serving stream, in two placement styles: ``narrow`` (the planning/update
  trackers' 500–5 000-wide x windows) and ``localized`` (the sharding
  trackers' windows far narrower than a shard, which is what makes
  bounding-box pruning effective).
* :func:`make_insert_rows` — insert batches drawn column-wise from the same
  x/y/z law.

Trackers: ``throughput`` (vectorized planner + batched execution),
``updates`` (delta-buffer insert/serve/merge/lifecycle), ``shards``
(sharded fan-out + pruning + updatable shards), ``serving`` (closed/open-loop
front-end latency), and ``faults`` (baseline → faulted → recovered chaos
phases).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from functools import partial
from pathlib import Path

import numpy as np

from repro.bench.scenario import TrackerConfig, load_config
from repro.common import faults
from repro.common.errors import ConfigError
from repro.common.faults import FaultPlan, FaultSpec
from repro.common.resilience import FaultPolicy, RetryPolicy
from repro.core.augmented_grid import AugmentedGrid, AugmentedGridConfig
from repro.core.delta import DeltaBufferedIndex
from repro.core.lifecycle import LifecycleConfig, LifecycleManager
from repro.core.sharding import ShardedIndex, scaled_tsunami_config
from repro.core.skeleton import Skeleton
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import QueryEngine
from repro.query.query import Query
from repro.query.workload import Workload
from repro.serve import ServingConfig, ServingFrontend
from repro.storage.scan import ScanStats
from repro.storage.table import Table

BATCH_SIZE = 256
NUM_SHARDS = 8
DOMAIN = 100_000
PLANNING_GRID = {"x": 64, "y": 64, "z": 16}
#: Closed-loop client threads of the serving tracker (sized well above the
#: batched pipeline's break-even batch size; a blocked client caps the window).
NUM_CLIENTS = 32
OVERLOAD_FACTOR = 1.4  # offered open-loop load relative to serialized capacity
#: Fault tracker gate: recovered throughput must reach this fraction of baseline.
RECOVERY_FLOOR = 0.6


# ---------------------------------------------------------------------------
# Shared generators
# ---------------------------------------------------------------------------


def make_linear_dataset(
    name: str, num_rows: int, seed: int, *, narrow: bool = True
) -> Table:
    """The serving trackers' skewed dataset: x uniform, y = 3x + noise, z small.

    ``narrow=False`` forces every column to stay ``int64`` — the storage
    baseline the throughput tracker's bytes-scanned gate compares against.
    """
    rng = np.random.default_rng(seed)
    x = rng.integers(0, DOMAIN, num_rows)
    y = x * 3 + rng.integers(-500, 501, num_rows)
    z = rng.integers(0, 5_000, num_rows)
    return Table.from_arrays(name, {"x": x, "y": y, "z": z}, narrow=narrow)


#: Template placement styles: (x_low high, width low/high, z low/high).
_STREAM_STYLES = {
    "narrow": (90_000, 500, 5_000, 500, 4_000),
    "localized": (DOMAIN - 6_000, 1_000, 5_000, 1_000, 4_500),
}


def make_template_stream(
    num_templates: int, num_queries: int, seed: int, style: str
) -> tuple[Workload, list[Query]]:
    """Template pool + zipf-repeated serving stream (the PR 2 batching regime)."""
    try:
        x_max, width_low, width_high, z_low, z_high = _STREAM_STYLES[style]
    except KeyError:
        raise ConfigError(
            f"unknown stream style {style!r}; expected one of {sorted(_STREAM_STYLES)}"
        ) from None
    rng = np.random.default_rng(seed)
    templates = []
    for _ in range(num_templates):
        x_low = int(rng.integers(0, x_max))
        templates.append(
            Query.from_ranges(
                {
                    "x": (x_low, x_low + int(rng.integers(width_low, width_high))),
                    "z": (0, int(rng.integers(z_low, z_high))),
                }
            )
        )
    draws = rng.zipf(1.2, size=num_queries) - 1
    stream = [templates[int(d) % num_templates] for d in draws]
    return Workload(templates, name="templates"), stream


def make_insert_rows(count: int, seed: int) -> list[dict]:
    """Insert batches drawn column-wise from the same x/y/z law."""
    rng = np.random.default_rng(seed)
    x = rng.integers(0, DOMAIN, count)
    y = x * 3 + rng.integers(-500, 501, count)
    z = rng.integers(0, 5_000, count)
    return [
        {"x": int(xi), "y": int(yi), "z": int(zi)}
        for xi, yi, zi in zip(x, y, z)
    ]


def tsunami_factory(optimizer_iterations: int = 2):
    return partial(TsunamiIndex, TsunamiConfig(optimizer_iterations=optimizer_iterations))


def shard_factory(optimizer_iterations: int = 2):
    """Per-shard factory with the layout budget scaled to one shard's share."""
    config = scaled_tsunami_config(
        NUM_SHARDS, TsunamiConfig(optimizer_iterations=optimizer_iterations)
    )
    return partial(TsunamiIndex, config)


def timed(run) -> tuple[float, list]:
    start = time.perf_counter()
    outcomes = run()
    return time.perf_counter() - start, outcomes


# ---------------------------------------------------------------------------
# Tracker 1: query planning + batched execution throughput
# ---------------------------------------------------------------------------


def make_planning_grid(num_rows: int, seed: int = 11) -> tuple[Table, AugmentedGrid]:
    rng = np.random.default_rng(seed)
    table = Table.from_arrays(
        "plan_bench",
        {
            "x": rng.integers(0, 1_000_000, num_rows),
            "y": rng.integers(0, 1_000_000, num_rows),
            "z": rng.integers(0, 1_000_000, num_rows),
        },
    )
    config = AugmentedGridConfig(
        skeleton=Skeleton.all_independent(["x", "y", "z"]), partitions=dict(PLANNING_GRID)
    )
    grid = AugmentedGrid(config)
    table.reorder(grid.fit(table))
    return table, grid


def selective_queries(num_queries: int, seed: int = 12) -> list[Query]:
    """Selective 2-3 dimensional range queries over the planning grid's domain."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(num_queries):
        x_low = int(rng.integers(0, 800_000))
        y_low = int(rng.integers(0, 600_000))
        ranges = {
            "x": (x_low, x_low + int(rng.integers(50_000, 300_000))),
            "y": (y_low, y_low + int(rng.integers(100_000, 400_000))),
        }
        if rng.random() < 0.5:
            z_low = int(rng.integers(0, 700_000))
            ranges["z"] = (z_low, z_low + int(rng.integers(100_000, 300_000)))
        queries.append(Query.from_ranges(ranges))
    return queries


def bench_planning(num_rows: int, num_queries: int, repeats: int) -> dict:
    """Plans/sec of both planners on the 64x64x16 grid (no caching involved)."""
    _, grid = make_planning_grid(num_rows)
    queries = selective_queries(num_queries)
    results: dict = {
        "grid": list(PLANNING_GRID.values()),
        "num_rows": num_rows,
        "num_queries": num_queries,
    }
    for planner in ("reference", "vectorized"):
        grid.planner = planner
        for query in queries[: min(8, len(queries))]:  # warm-up
            grid.plan(query)
        best = float("inf")
        spans_total = 0
        for _ in range(repeats):
            start = time.perf_counter()
            spans_total = 0
            for query in queries:
                spans, _ = grid.plan(query)
                spans_total += len(spans)
            best = min(best, time.perf_counter() - start)
        results[planner] = {
            "seconds_total": round(best, 6),
            "plans_per_second": round(num_queries / best, 1),
            "avg_spans_per_query": round(spans_total / num_queries, 2),
        }
    results["speedup"] = round(
        results["vectorized"]["plans_per_second"]
        / results["reference"]["plans_per_second"],
        2,
    )
    return results


def set_planner(index: TsunamiIndex, planner: str) -> None:
    """Flip every region grid's planner without rebuilding the layout."""
    for region in index._regions:
        if region.grid is not None:
            region.grid.planner = planner
            if region.grid.plan_cache is not None:
                region.grid.plan_cache.clear()


def bench_execution(num_rows: int, num_templates: int, num_queries: int) -> dict:
    table = make_linear_dataset("throughput", num_rows, seed=13)
    templates, stream = make_template_stream(
        num_templates, num_queries, seed=14, style="narrow"
    )
    index = TsunamiIndex(TsunamiConfig(optimizer_iterations=2))
    index.build(table, templates)
    engine = QueryEngine(index=index)

    results: dict = {
        "num_rows": num_rows,
        "num_templates": num_templates,
        "num_queries": num_queries,
        "batch_size": BATCH_SIZE,
    }
    narrow_values: list[float] = []
    narrow_batched: dict = {}
    for planner in ("reference", "vectorized"):
        set_planner(index, planner)
        planner_results = {}
        for batch in (1, BATCH_SIZE):
            set_planner(index, planner)  # clears the plan cache between runs
            total = ScanStats()
            start = time.perf_counter()
            if batch == 1:
                outcomes = [engine.run(query) for query in stream]
            else:
                outcomes = engine.run_batch(stream, batch_size=batch)
            elapsed = time.perf_counter() - start
            for outcome in outcomes:
                total.merge(outcome.stats)
            cache_stats = index.plan_cache_stats()
            planner_results[f"batch_{batch}"] = {
                "queries_per_second": round(len(stream) / elapsed, 1),
                "rows_scanned_per_sec": round(total.points_scanned / elapsed, 1),
                "seconds_total": round(elapsed, 4),
                "points_scanned": total.points_scanned,
                "cell_ranges": total.cell_ranges,
                "rows_matched": total.rows_matched,
                "scan_work": total.scan_work,
                "values_scanned": total.values_scanned,
                "bytes_scanned": total.bytes_scanned,
                "plan_cache_hit_rate": round(cache_stats.hit_rate, 4),
            }
            if planner == "vectorized" and batch == BATCH_SIZE:
                narrow_values = [outcome.value for outcome in outcomes]
                narrow_batched = {
                    "elapsed": elapsed,
                    "points": total.points_scanned,
                    "values": total.values_scanned,
                    "bytes": total.bytes_scanned,
                }
        planner_results["batch_speedup"] = round(
            planner_results[f"batch_{BATCH_SIZE}"]["queries_per_second"]
            / planner_results["batch_1"]["queries_per_second"],
            2,
        )
        results[planner] = planner_results
    results["planner_speedup_batch_1"] = round(
        results["vectorized"]["batch_1"]["queries_per_second"]
        / results["reference"]["batch_1"]["queries_per_second"],
        2,
    )
    results["storage"] = _bench_storage_baseline(
        table, templates, stream, narrow_values, narrow_batched
    )
    return results


def _bench_storage_baseline(
    narrow_table: Table,
    templates: Workload,
    stream: list[Query],
    narrow_values: list[float],
    narrow_batched: dict,
) -> dict:
    """Differential run of the same stream over a forced-``int64`` table.

    Builds the identical index over an un-narrowed copy of the dataset,
    asserts the answers are bit-identical, and reports both tables' footprint
    and bytes-scanned so the smoke gate can enforce that fused narrow-dtype
    scans never read more bytes than the int64 baseline.
    """
    int64_table = make_linear_dataset(
        narrow_table.name, narrow_table.num_rows, seed=13, narrow=False
    )
    index = TsunamiIndex(TsunamiConfig(optimizer_iterations=2))
    index.build(int64_table, templates)
    engine = QueryEngine(index=index)
    set_planner(index, "vectorized")
    total = ScanStats()
    start = time.perf_counter()
    outcomes = engine.run_batch(stream, batch_size=BATCH_SIZE)
    elapsed = time.perf_counter() - start
    for outcome in outcomes:
        total.merge(outcome.stats)
    int64_values = [outcome.value for outcome in outcomes]
    assert int64_values == narrow_values, "narrow-dtype results diverged from int64"

    def _table_summary(table: Table, elapsed_s: float, points: int, values: int, bytes_: int) -> dict:
        info = table.describe()
        return {
            "table_size_bytes": info["size_bytes"],
            "table_bytes_per_value": info["bytes_per_value"],
            "column_dtypes": {col["name"]: col["dtype"] for col in info["columns"]},
            "points_scanned": points,
            "values_scanned": values,
            "bytes_scanned": bytes_,
            "rows_scanned_per_sec": round(points / elapsed_s, 1),
        }

    narrow = _table_summary(
        narrow_table,
        narrow_batched["elapsed"],
        narrow_batched["points"],
        narrow_batched["values"],
        narrow_batched["bytes"],
    )
    baseline = _table_summary(
        int64_table, elapsed, total.points_scanned, total.values_scanned, total.bytes_scanned
    )
    return {
        "narrow": narrow,
        "int64": baseline,
        "results_identical": True,
        "bytes_scanned_ratio_vs_int64": round(
            narrow["bytes_scanned"] / max(baseline["bytes_scanned"], 1), 4
        ),
        "footprint_ratio_vs_int64": round(
            narrow["table_size_bytes"] / max(baseline["table_size_bytes"], 1), 4
        ),
    }


def run_tracker_throughput(scale: dict, mode: str, seed: int | None) -> tuple[dict, list[str]]:
    planning = bench_planning(
        num_rows=scale["planning_rows"],
        num_queries=scale["planning_queries"],
        repeats=scale["planning_repeats"],
    )
    execution = bench_execution(
        num_rows=scale["execution_rows"],
        num_templates=scale["num_templates"],
        num_queries=scale["num_queries"],
    )
    report = {
        "benchmark": "query planning + batched execution throughput",
        "mode": mode,
        "planning": planning,
        "execution": execution,
    }
    failures = []
    if planning["speedup"] < 1.0:
        failures.append(
            f"vectorized planner is slower than reference "
            f"(speedup {planning['speedup']}x < 1.0x)"
        )
    storage = execution["storage"]
    if storage["bytes_scanned_ratio_vs_int64"] > 1.0:
        failures.append(
            "fused narrow-dtype kernels scanned more bytes than the int64 "
            f"baseline ({storage['bytes_scanned_ratio_vs_int64']}x > 1.0x)"
        )
    if storage["footprint_ratio_vs_int64"] > 1.0:
        failures.append(
            "narrow-dtype table footprint exceeds the all-int64 footprint "
            f"({storage['footprint_ratio_vs_int64']}x > 1.0x)"
        )
    return report, failures


# ---------------------------------------------------------------------------
# Tracker 2: updatable serving path (delta buffer) throughput
# ---------------------------------------------------------------------------


def bench_inserts(num_rows: int, num_inserts: int) -> dict:
    """Vectorized insert_many vs a per-row insert loop (no merges in between)."""
    rows = make_insert_rows(num_inserts, seed=24)
    results: dict = {"num_rows": num_rows, "num_inserts": num_inserts}

    for insert_mode in ("per_row", "vectorized"):
        index = DeltaBufferedIndex(
            tsunami_factory(1), merge_threshold=10 * num_inserts
        )
        index.build(make_linear_dataset("updates", num_rows, seed=23), None)
        start = time.perf_counter()
        if insert_mode == "per_row":
            for row in rows:
                index.insert(row)
        else:
            index.insert_many(rows)
        elapsed = time.perf_counter() - start
        assert index.num_pending == num_inserts
        results[insert_mode] = {
            "seconds_total": round(elapsed, 6),
            "rows_per_second": round(num_inserts / elapsed, 1),
        }
    results["speedup"] = round(
        results["vectorized"]["rows_per_second"] / results["per_row"]["rows_per_second"], 2
    )
    return results


def bench_queries_with_pending(
    num_rows: int, num_inserts: int, num_templates: int, num_queries: int
) -> tuple[dict, DeltaBufferedIndex]:
    """Serving throughput with a hot buffer: unbatched vs batched vs read-only.

    Returns the result dict plus the still-unmerged index so ``bench_merge``
    can measure folding that same buffer in.
    """
    templates, stream = make_template_stream(
        num_templates, num_queries, seed=25, style="narrow"
    )

    read_only = TsunamiIndex(TsunamiConfig(optimizer_iterations=2))
    read_only.build(make_linear_dataset("updates", num_rows, seed=23), templates)
    read_only_engine = QueryEngine(index=read_only)

    delta = DeltaBufferedIndex(tsunami_factory(2), merge_threshold=10 * num_inserts)
    delta.build(make_linear_dataset("updates", num_rows, seed=23), templates)
    delta.insert_many(make_insert_rows(num_inserts, seed=24))
    delta_engine = QueryEngine(index=delta)

    results: dict = {
        "num_rows": num_rows,
        "pending_inserts": delta.num_pending,
        "num_templates": num_templates,
        "num_queries": num_queries,
        "batch_size": BATCH_SIZE,
    }

    # Warm both serving paths (plan caches persist across batches in a real
    # server) so the read-only ceiling and the delta paths compare fairly.
    warmup = stream[: min(BATCH_SIZE, len(stream))]
    read_only_engine.run_batch(warmup, batch_size=BATCH_SIZE)
    delta_engine.run_batch(warmup, batch_size=BATCH_SIZE)

    seconds, _ = timed(
        lambda: read_only_engine.run_batch(stream, batch_size=BATCH_SIZE)
    )
    results["read_only_batched"] = {
        "queries_per_second": round(len(stream) / seconds, 1),
        "seconds_total": round(seconds, 4),
    }

    seconds, unbatched_results = timed(lambda: [delta_engine.run(q) for q in stream])
    results["delta_unbatched"] = {
        "queries_per_second": round(len(stream) / seconds, 1),
        "seconds_total": round(seconds, 4),
    }

    seconds, batched_results = timed(
        lambda: delta_engine.run_batch(stream, batch_size=BATCH_SIZE)
    )
    results["delta_batched"] = {
        "queries_per_second": round(len(stream) / seconds, 1),
        "seconds_total": round(seconds, 4),
    }

    for single, batched in zip(unbatched_results, batched_results):
        assert single.value == batched.value, "batched delta path diverged"

    results["batch_speedup"] = round(
        results["delta_batched"]["queries_per_second"]
        / results["delta_unbatched"]["queries_per_second"],
        2,
    )
    results["delta_batched_vs_read_only"] = round(
        results["delta_batched"]["queries_per_second"]
        / results["read_only_batched"]["queries_per_second"],
        3,
    )
    return results, delta


def bench_merge(delta: DeltaBufferedIndex) -> dict:
    """Cost of folding the pending buffer into the main index."""
    pending = delta.num_pending
    start = time.perf_counter()
    report = delta.merge()
    elapsed = time.perf_counter() - start
    if report is None:
        return {"rows_merged": 0}
    return {
        "rows_merged": report.rows_merged,
        "rebuild_seconds": round(report.rebuild_seconds, 4),
        "merge_seconds_total": round(elapsed, 4),
        "rows_per_second": round(pending / elapsed, 1),
        "total_rows_after": report.total_rows,
    }


def bench_lifecycle(num_rows: int, num_queries: int) -> dict:
    """A drifting stream served through the lifecycle loop, report recorded."""
    rng = np.random.default_rng(29)
    templates, stream = make_template_stream(16, num_queries // 2, seed=25, style="narrow")
    index = DeltaBufferedIndex(tsunami_factory(1), merge_threshold=10 * num_rows)
    index.build(make_linear_dataset("updates", num_rows, seed=23), templates)
    manager = LifecycleManager(
        index, LifecycleConfig(observe_window=128, merge_pressure=0.05)
    )

    # Phase 1: the fitted workload. Phase 2: inserts plus a drifted workload
    # (novel wide single-dimension scans) that should trip the loop.
    drifted = [
        Query.from_ranges(
            {"y": (int(low := rng.integers(0, 60_000)), int(low) + 180_000)}
        )
        for _ in range(num_queries - len(stream))
    ]
    start = time.perf_counter()
    manager.run_batch(stream)
    manager.insert_many(make_insert_rows(max(num_rows // 10, 64), seed=30))
    manager.run_batch(drifted)
    elapsed = time.perf_counter() - start
    report = manager.report().as_dict()
    report["events"] = report["events"][:20]  # keep the JSON bounded
    return {
        "num_rows": num_rows,
        "num_queries": num_queries,
        "seconds_total": round(elapsed, 4),
        "report": report,
    }


def make_localized_insert_rows(
    count: int, seed: int, x_low: int = 88_000, x_width: int = 6_000
) -> list[dict]:
    """Insert rows concentrated in one x window (a write-hotspot drift).

    Localized inserts are what the per-region merge path is for: only the
    Grid Tree regions overlapping the window receive rows, so a local merge
    leaves the rest of the table untouched.
    """
    rng = np.random.default_rng(seed)
    x = rng.integers(x_low, x_low + x_width, count)
    y = x * 3 + rng.integers(-500, 501, count)
    z = rng.integers(0, 5_000, count)
    return [
        {"x": int(xi), "y": int(yi), "z": int(zi)}
        for xi, yi, zi in zip(x, y, z)
    ]


def bench_sustained_inserts(
    base_rows: int,
    num_sizes: int,
    num_inserts: int,
    merge_threshold: int,
    repeats: int = 3,
) -> dict:
    """Sustained insert rate vs table size, local vs rebuild merge strategy.

    The same localized insert stream (merge cadence held constant by a fixed
    ``merge_threshold``) is pushed through both strategies at ``num_sizes``
    doubling table sizes.  The rebuild path redoes O(table) work per merge,
    so its updates/sec falls roughly linearly with size; the local path only
    reorganizes the regions the hotspot lands in.  Probe queries are executed
    against both indexes afterwards and must agree bit for bit.

    Each (size, strategy) cell is measured ``repeats`` times on a fresh index
    and reports the median rate: a single insert run is tens of milliseconds
    at the small end, where one scheduler hiccup would otherwise dominate the
    first/last degradation ratio the smoke gate checks.
    """
    sizes = [base_rows * (2**position) for position in range(num_sizes)]
    results: dict = {
        "num_sizes": num_sizes,
        "inserts_per_size": num_inserts,
        "merge_threshold": merge_threshold,
        "sizes": [],
    }
    mismatches_total = 0
    for num_rows in sizes:
        templates, _ = make_template_stream(16, 1, seed=31, style="localized")
        # One probe pinned to the insert hotspot so the differential check
        # always covers rows that arrived through the merge path.
        probes = [
            *templates,
            Query.from_ranges({"x": (88_000, 94_000), "z": (0, 5_000)}),
        ]
        rows = make_localized_insert_rows(num_inserts, seed=32)
        entry: dict = {"num_rows": num_rows}
        executed: dict[str, list] = {}
        for strategy in ("local", "rebuild"):
            samples = []
            for _ in range(repeats):
                index = DeltaBufferedIndex(
                    tsunami_factory(1),
                    merge_threshold=merge_threshold,
                    merge_strategy=strategy,
                )
                index.build(
                    make_linear_dataset("sustained", num_rows, seed=23), templates
                )
                seconds, _ = timed(lambda: index.insert_many(rows))
                samples.append(seconds)
            index.merge()
            seconds = statistics.median(samples)
            history = index.merge_history
            entry[strategy] = {
                "seconds_total": round(seconds, 4),
                "rows_per_second": round(num_inserts / seconds, 1),
                "merges": len(history),
                "strategies_run": sorted({report.strategy for report in history}),
                "regions_touched": sum(
                    report.regions_touched or 0 for report in history
                ),
                "regions_total": history[-1].regions_total if history else None,
            }
            executed[strategy] = [index.execute(query) for query in probes]
        entry["mismatches"] = sum(
            1
            for local_result, rebuild_result in zip(
                executed["local"], executed["rebuild"]
            )
            if local_result.value != rebuild_result.value
            or local_result.stats.rows_matched != rebuild_result.stats.rows_matched
        )
        mismatches_total += entry["mismatches"]
        entry["local_vs_rebuild"] = round(
            entry["local"]["rows_per_second"] / entry["rebuild"]["rows_per_second"],
            2,
        )
        results["sizes"].append(entry)
    for strategy in ("local", "rebuild"):
        first = results["sizes"][0][strategy]["rows_per_second"]
        last = results["sizes"][-1][strategy]["rows_per_second"]
        results[f"{strategy}_degradation"] = round(first / last, 2) if last else None
    results["mismatches_total"] = mismatches_total
    return results


def run_tracker_updates(scale: dict, mode: str, seed: int | None) -> tuple[dict, list[str]]:
    inserts = bench_inserts(
        num_rows=scale["insert_rows"], num_inserts=scale["num_inserts"]
    )
    queries, delta = bench_queries_with_pending(
        num_rows=scale["query_rows"],
        num_inserts=scale["pending_inserts"],
        num_templates=scale["num_templates"],
        num_queries=scale["num_queries"],
    )
    merge = bench_merge(delta)
    lifecycle = bench_lifecycle(
        num_rows=scale["lifecycle_rows"], num_queries=scale["lifecycle_queries"]
    )
    sustained = bench_sustained_inserts(
        base_rows=scale["sustained_base_rows"],
        num_sizes=scale["sustained_num_sizes"],
        num_inserts=scale["sustained_inserts"],
        merge_threshold=scale["sustained_merge_threshold"],
    )
    report = {
        "benchmark": "updatable serving path (delta buffer) throughput",
        "mode": mode,
        "inserts": inserts,
        "queries_with_pending_inserts": queries,
        "merge": merge,
        "lifecycle": lifecycle,
        "sustained_inserts": sustained,
    }
    failures = []
    if queries["batch_speedup"] < 1.0:
        failures.append(
            f"batched delta-path queries are slower than the "
            f"unbatched path (speedup {queries['batch_speedup']}x < 1.0x)"
        )
    if sustained["mismatches_total"] > 0:
        failures.append(
            "local and rebuild merge strategies disagree on "
            f"{sustained['mismatches_total']} probe query result(s)"
        )
    degradation = sustained["local_degradation"]
    if degradation is None or degradation >= 2.0:
        failures.append(
            "local-merge sustained insert rate degrades "
            f"{degradation}x from the smallest to the largest table "
            "(must stay under 2.0x)"
        )
    return report, failures


# ---------------------------------------------------------------------------
# Tracker 3: sharded serving layer throughput
# ---------------------------------------------------------------------------


def bench_batched_throughput(
    num_rows: int, num_templates: int, num_queries: int, parallelism: int
) -> dict:
    """Single index vs sharded-serial vs sharded-parallel on one skewed stream."""
    templates, stream = make_template_stream(
        num_templates, num_queries, seed=34, style="localized"
    )

    single = tsunami_factory()()
    single.build(make_linear_dataset("sharded", num_rows, seed=33), templates)

    serial = ShardedIndex(shard_factory(), num_shards=NUM_SHARDS, shard_dimension="x")
    serial.build(make_linear_dataset("sharded", num_rows, seed=33), templates)

    parallel = ShardedIndex(
        shard_factory(), num_shards=NUM_SHARDS, shard_dimension="x", parallelism=parallelism
    )
    parallel.build(make_linear_dataset("sharded", num_rows, seed=33), templates)

    engines = {
        "single_batched": QueryEngine(index=single),
        "sharded_serial_batched": QueryEngine(index=serial),
        "sharded_parallel_batched": QueryEngine(index=parallel),
    }
    results: dict = {
        "num_rows": num_rows,
        "num_shards": NUM_SHARDS,
        "parallelism": parallelism,
        "num_templates": num_templates,
        "num_queries": num_queries,
        "batch_size": BATCH_SIZE,
    }

    # Warm every serving path (plan caches persist across batches in a real
    # server) so the comparison is steady-state.
    warmup = stream[: min(BATCH_SIZE, len(stream))]
    for engine in engines.values():
        engine.run_batch(warmup, batch_size=BATCH_SIZE)

    values: dict[str, list] = {}
    for label, engine in engines.items():
        seconds, outcomes = timed(lambda e=engine: e.run_batch(stream, batch_size=BATCH_SIZE))
        values[label] = outcomes
        results[label] = {
            "queries_per_second": round(len(stream) / seconds, 1),
            "seconds_total": round(seconds, 4),
        }

    for label in ("sharded_serial_batched", "sharded_parallel_batched"):
        for reference, candidate in zip(values["single_batched"], values[label]):
            assert candidate.value == reference.value, f"{label} diverged from single index"

    single_qps = results["single_batched"]["queries_per_second"]
    results["sharded_serial_vs_single"] = round(
        results["sharded_serial_batched"]["queries_per_second"] / single_qps, 3
    )
    results["sharded_parallel_vs_single"] = round(
        results["sharded_parallel_batched"]["queries_per_second"] / single_qps, 3
    )
    return results


def bench_pruning(num_rows: int, num_templates: int) -> dict:
    """How many shards the per-shard bounding boxes skip per query template."""
    templates, _ = make_template_stream(num_templates, 1, seed=34, style="localized")
    sharded = ShardedIndex(shard_factory(), num_shards=NUM_SHARDS, shard_dimension="x")
    sharded.build(make_linear_dataset("sharded", num_rows, seed=33), templates)
    pruned = [sharded.shards_pruned(query) for query in templates]
    return {
        "num_rows": num_rows,
        "num_shards": NUM_SHARDS,
        "num_templates": num_templates,
        "avg_shards_pruned": round(float(np.mean(pruned)), 2),
        "min_shards_pruned": int(min(pruned)),
        "max_shards_pruned": int(max(pruned)),
        "avg_fraction_pruned": round(float(np.mean(pruned)) / NUM_SHARDS, 3),
    }


def bench_updatable_shards(
    num_rows: int, num_inserts: int, num_templates: int, num_queries: int, parallelism: int
) -> dict:
    """The batched path over delta-buffered shards holding pending inserts."""
    templates, stream = make_template_stream(
        num_templates, num_queries, seed=34, style="localized"
    )
    factory = partial(
        DeltaBufferedIndex, shard_factory(), merge_threshold=10 * max(num_inserts, 1)
    )
    sharded = ShardedIndex(
        factory, num_shards=NUM_SHARDS, shard_dimension="x", parallelism=parallelism
    )
    sharded.build(make_linear_dataset("sharded", num_rows, seed=33), templates)

    rng = np.random.default_rng(35)
    rows = [
        {
            "x": int(x),
            "y": int(x) * 3 + int(rng.integers(-500, 501)),
            "z": int(rng.integers(0, 5_000)),
        }
        for x in rng.integers(0, DOMAIN, num_inserts)
    ]
    seconds, _ = timed(lambda: sharded.insert_many(rows))
    insert_rate = round(num_inserts / seconds, 1) if seconds else float("inf")

    engine = QueryEngine(index=sharded)
    engine.run_batch(stream[: min(BATCH_SIZE, len(stream))], batch_size=BATCH_SIZE)
    seconds, batched = timed(lambda: engine.run_batch(stream, batch_size=BATCH_SIZE))

    probe = list({q: None for q in stream})[:16]
    for query in probe:
        assert sharded.execute(query).value == batched[stream.index(query)].value

    return {
        "num_rows": num_rows,
        "pending_inserts": sharded.num_pending,
        "insert_rows_per_second": insert_rate,
        "batched": {
            "queries_per_second": round(len(stream) / seconds, 1),
            "seconds_total": round(seconds, 4),
        },
    }


def run_tracker_shards(scale: dict, mode: str, seed: int | None) -> tuple[dict, list[str]]:
    throughput = bench_batched_throughput(
        num_rows=scale["throughput_rows"],
        num_templates=scale["num_templates"],
        num_queries=scale["num_queries"],
        parallelism=NUM_SHARDS,
    )
    pruning = bench_pruning(
        num_rows=scale["pruning_rows"], num_templates=scale["num_templates"]
    )
    updatable = bench_updatable_shards(
        num_rows=scale["updatable_rows"],
        num_inserts=scale["num_inserts"],
        num_templates=scale["num_templates"],
        num_queries=scale["updatable_queries"],
        parallelism=NUM_SHARDS,
    )
    report = {
        "benchmark": "sharded serving layer throughput",
        "mode": mode,
        "batched_throughput": throughput,
        "pruning": pruning,
        "updatable_shards": updatable,
    }
    failures = []
    if throughput["sharded_parallel_vs_single"] < 1.0:
        failures.append(
            "sharded-parallel batched throughput regressed below "
            f"the single-index baseline "
            f"({throughput['sharded_parallel_vs_single']}x < 1.0x)"
        )
    return report, failures


# ---------------------------------------------------------------------------
# Tracker 4: concurrent serving front-end latency + throughput
# ---------------------------------------------------------------------------


def serving_config(cache: bool) -> ServingConfig:
    return ServingConfig(
        max_batch_size=256,
        max_delay_seconds=0.002,
        idle_gap_seconds=0.00025,
        max_queue_depth=8_192,
        cache_entries=4_096 if cache else 0,
    )


def _no_close(config: ServingConfig) -> ServingConfig:
    """The benchmark reuses one engine across front-ends; don't close it."""
    return replace(config, close_backend=False)


def percentile_summary(latencies_s: list[float]) -> dict:
    values = np.asarray(latencies_s) * 1_000.0
    p50, p95, p99 = np.percentile(values, [50, 95, 99])
    return {
        "p50_ms": round(float(p50), 3),
        "p95_ms": round(float(p95), 3),
        "p99_ms": round(float(p99), 3),
        "mean_ms": round(float(values.mean()), 3),
        "max_ms": round(float(values.max()), 3),
    }


def run_serialized(engine: QueryEngine, stream: list[Query]) -> tuple[float, list[float]]:
    """One query at a time through ``engine.run`` — the no-server baseline."""
    start = time.perf_counter()
    values = [engine.run(query).value for query in stream]
    return time.perf_counter() - start, values


def run_concurrent(
    frontend: ServingFrontend, stream: list[Query], num_clients: int
) -> tuple[float, list[float]]:
    """``num_clients`` closed-loop clients submitting through the front-end."""
    start = time.perf_counter()
    with ThreadPoolExecutor(num_clients) as pool:
        results = list(pool.map(frontend.query, stream))
    return time.perf_counter() - start, [result.value for result in results]


def bench_closed_loop(engine: QueryEngine, stream: list[Query]) -> dict:
    results: dict = {"num_queries": len(stream), "num_clients": NUM_CLIENTS}

    # Warm the plan caches once so every mode measures steady state.
    engine.run_batch(stream[:256], batch_size=256)

    serial_seconds, expected = run_serialized(engine, stream)
    results["serialized"] = {
        "queries_per_second": round(len(stream) / serial_seconds, 1),
        "seconds_total": round(serial_seconds, 4),
    }

    for label, cache in (("batched", False), ("batched_cached", True)):
        with ServingFrontend(engine, _no_close(serving_config(cache))) as frontend:
            seconds, values = run_concurrent(frontend, stream, NUM_CLIENTS)
            for got, want in zip(values, expected):
                assert got == want, f"{label} serving diverged from serialized"
            results[label] = {
                "queries_per_second": round(len(stream) / seconds, 1),
                "seconds_total": round(seconds, 4),
                "stats": frontend.describe(),
            }

    serial_qps = results["serialized"]["queries_per_second"]
    results["batched_vs_serialized"] = round(
        results["batched"]["queries_per_second"] / serial_qps, 3
    )
    results["cached_vs_serialized"] = round(
        results["batched_cached"]["queries_per_second"] / serial_qps, 3
    )
    return results


def arrival_offsets(num_queries: int, rate_qps: float, seed: int = 43) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.exponential(1.0 / rate_qps, size=num_queries).cumsum()


def open_loop_serialized(
    engine: QueryEngine, stream: list[Query], offsets: np.ndarray
) -> list[float]:
    """A single server thread working a Poisson arrival schedule."""
    latencies = []
    start = time.perf_counter()
    for query, offset in zip(stream, offsets):
        scheduled = start + offset
        now = time.perf_counter()
        if now < scheduled:
            time.sleep(scheduled - now)
        engine.run(query)
        latencies.append(time.perf_counter() - scheduled)
    return latencies


def open_loop_concurrent(
    frontend: ServingFrontend,
    stream: list[Query],
    offsets: np.ndarray,
    num_clients: int,
) -> list[float]:
    """``num_clients`` threads splitting the same arrival schedule."""
    latencies: list[float] = []
    lock = threading.Lock()
    start = time.perf_counter()

    def client(position: int) -> None:
        mine = []
        for i in range(position, len(stream), num_clients):
            scheduled = start + offsets[i]
            now = time.perf_counter()
            if now < scheduled:
                time.sleep(scheduled - now)
            frontend.query(stream[i])
            mine.append(time.perf_counter() - scheduled)
        with lock:
            latencies.extend(mine)

    threads = [threading.Thread(target=client, args=(t,)) for t in range(num_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies


def bench_open_loop(
    engine: QueryEngine, stream: list[Query], serialized_qps: float
) -> dict:
    rate = serialized_qps * OVERLOAD_FACTOR
    offsets = arrival_offsets(len(stream), rate)
    results: dict = {
        "num_queries": len(stream),
        "num_clients": NUM_CLIENTS,
        "offered_load_qps": round(rate, 1),
        "overload_factor_vs_serialized": OVERLOAD_FACTOR,
    }

    results["serialized"] = percentile_summary(
        open_loop_serialized(engine, stream, offsets)
    )
    for label, cache in (("batched", False), ("batched_cached", True)):
        with ServingFrontend(engine, _no_close(serving_config(cache))) as frontend:
            latencies = open_loop_concurrent(frontend, stream, offsets, NUM_CLIENTS)
            results[label] = percentile_summary(latencies)
            results[label]["batching"] = frontend.batcher.stats.as_dict()
            if frontend.cache is not None:
                results[label]["cache"] = frontend.cache.stats.as_dict()
    return results


def run_tracker_serving(scale: dict, mode: str, seed: int | None) -> tuple[dict, list[str]]:
    num_rows = scale["num_rows"]
    num_templates = scale["num_templates"]
    templates, stream = make_template_stream(
        num_templates, scale["num_queries"], seed=42, style="localized"
    )
    index = TsunamiIndex(TsunamiConfig(optimizer_iterations=2))
    index.build(make_linear_dataset("serving", num_rows, seed=41), templates)
    engine = QueryEngine(index=index)

    closed = bench_closed_loop(engine, stream)
    open_loop = bench_open_loop(
        engine,
        stream[: scale["open_loop_queries"]],
        closed["serialized"]["queries_per_second"],
    )

    report = {
        "benchmark": "concurrent serving front-end latency + throughput",
        "mode": mode,
        "num_rows": num_rows,
        "num_templates": num_templates,
        "closed_loop_throughput": closed,
        "open_loop_latency": open_loop,
    }
    failures = []
    if closed["batched_vs_serialized"] < 1.0:
        failures.append(
            "concurrent micro-batched serving regressed below "
            f"serialized per-query serving "
            f"({closed['batched_vs_serialized']}x < 1.0x)"
        )
    return report, failures


# ---------------------------------------------------------------------------
# Tracker 5: fault-tolerant serving
# ---------------------------------------------------------------------------


def fault_schedule(seed: int) -> FaultPlan:
    """Transient errors plus injected delays at the shard-execution site.

    Probabilities are drawn from the plan's seeded RNG, so the same seed over
    the same batch sequence replays the identical schedule.
    """
    return FaultPlan(
        [
            FaultSpec(site="shard.execute", kind="error", probability=0.15),
            FaultSpec(
                site="shard.execute", kind="delay", probability=0.10, delay_seconds=0.003
            ),
        ],
        seed=seed,
    )


def serving_policy() -> FaultPolicy:
    return FaultPolicy(
        shard_timeout_seconds=5.0,
        retry=RetryPolicy(max_retries=1, backoff_seconds=0.001, seed=7),
        breaker_failure_threshold=3,
        breaker_cooldown_seconds=0.05,
        degradation="degraded",
    )


def run_phase(index: ShardedIndex, stream: list[Query]) -> dict:
    """Serve ``stream`` in batches; throughput, latency, and the raw values."""
    batch_seconds: list[float] = []
    values: list[float | None] = []
    before = dict(index.fault_stats.as_dict())
    start = time.perf_counter()
    for offset in range(0, len(stream), BATCH_SIZE):
        batch = stream[offset : offset + BATCH_SIZE]
        batch_start = time.perf_counter()
        results = index.execute_batch(batch)
        batch_seconds.append(time.perf_counter() - batch_start)
        values.extend(result.value for result in results)
    seconds = time.perf_counter() - start
    after = index.fault_stats.as_dict()
    latencies = sorted(batch_seconds)

    def percentile(fraction: float) -> float:
        return latencies[min(int(len(latencies) * fraction), len(latencies) - 1)]

    return {
        "queries": len(stream),
        "queries_per_second": round(len(stream) / seconds, 1),
        "seconds_total": round(seconds, 4),
        "batch_latency_ms": {
            "p50": round(percentile(0.50) * 1e3, 3),
            "p95": round(percentile(0.95) * 1e3, 3),
            "max": round(latencies[-1] * 1e3, 3),
        },
        "fault_stats_delta": {
            key: after[key] - before[key] for key in after
        },
        "values": values,
    }


def bench_fault_tolerance(
    num_rows: int, num_templates: int, num_queries: int, seed: int
) -> tuple[dict, list[str]]:
    """The three-phase chaos run; returns the report and any gate failures."""
    templates, stream = make_template_stream(
        num_templates, num_queries, seed=44, style="localized"
    )
    index = ShardedIndex(
        shard_factory(1),
        num_shards=NUM_SHARDS,
        shard_dimension="x",
        parallelism=NUM_SHARDS,
        fault_policy=serving_policy(),
    )
    index.build(make_linear_dataset("faulty", num_rows, seed=43), templates)

    failures: list[str] = []
    try:
        # Warm plan caches so every phase measures steady state.
        index.execute_batch(stream[: min(BATCH_SIZE, len(stream))])

        baseline = run_phase(index, stream)
        if baseline["fault_stats_delta"]["partial_serves"]:
            failures.append("baseline phase reported partial serves without faults")

        plan = fault_schedule(seed)
        with faults.active(plan):
            faulted = run_phase(index, stream)
        faulted["injected_faults"] = len(plan.injections)
        faulted["injected_errors"] = sum(
            1 for injection in plan.injections if injection.kind == "error"
        )
        faulted["injected_delays"] = sum(
            1 for injection in plan.injections if injection.kind == "delay"
        )
        if faulted["queries"] != len(stream):
            failures.append("faulted phase dropped queries instead of degrading")

        # Let every opened breaker's cooldown elapse so the recovered phase
        # starts from half-open probes, exactly like a real incident ending.
        time.sleep(serving_policy().breaker_cooldown_seconds * 2)
        recovered = run_phase(index, stream)
    finally:
        index.close()

    mismatched = sum(
        1 for a, b in zip(recovered["values"], baseline["values"]) if a != b
    )
    if mismatched:
        failures.append(
            f"recovered values diverged from baseline for {mismatched} queries"
        )
    if recovered["fault_stats_delta"]["shard_failures"]:
        failures.append("recovered phase still recorded shard failures")

    recovery_ratio = round(
        recovered["queries_per_second"] / baseline["queries_per_second"], 3
    )
    if recovery_ratio < RECOVERY_FLOOR:
        failures.append(
            f"recovered throughput is {recovery_ratio}x of baseline "
            f"(floor {RECOVERY_FLOOR}x)"
        )

    for phase in (baseline, faulted, recovered):
        del phase["values"]  # raw values are compared, not reported

    report = {
        "num_rows": num_rows,
        "num_shards": NUM_SHARDS,
        "num_templates": num_templates,
        "num_queries": num_queries,
        "batch_size": BATCH_SIZE,
        "fault_seed": seed,
        "policy": {
            "shard_timeout_seconds": 5.0,
            "max_retries": 1,
            "breaker_failure_threshold": 3,
            "breaker_cooldown_seconds": 0.05,
            "degradation": "degraded",
        },
        "baseline": baseline,
        "faulted": faulted,
        "recovered": recovered,
        "recovery_ratio": recovery_ratio,
        "recovered_bit_identical": mismatched == 0,
    }
    return report, failures


def run_tracker_faults(scale: dict, mode: str, seed: int | None) -> tuple[dict, list[str]]:
    report, failures = bench_fault_tolerance(
        num_rows=scale["num_rows"],
        num_templates=scale["num_templates"],
        num_queries=scale["num_queries"],
        seed=11 if seed is None else seed,
    )
    report["benchmark"] = "fault-tolerant serving"
    report["mode"] = mode
    return report, failures


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

_TRACKERS = {
    "throughput": run_tracker_throughput,
    "updates": run_tracker_updates,
    "shards": run_tracker_shards,
    "serving": run_tracker_serving,
    "faults": run_tracker_faults,
}


def run_tracker(
    config: TrackerConfig, mode: str = "full", seed: int | None = None
) -> tuple[dict, list[str]]:
    """Run one tracker at the configured scale; returns (report, gate failures)."""
    if mode not in config.scales:
        raise ConfigError(
            f"tracker {config.name!r} has no scale for mode {mode!r}; "
            f"available: {sorted(config.scales)}"
        )
    scale = dict(config.scales[mode])
    runner = _TRACKERS[config.tracker]
    if seed is None and config.seed is not None:
        seed = config.seed
    return runner(scale, mode, seed)


def tracker_main(
    config_path: str | Path,
    argv: list[str] | None = None,
    default_output_root: str | Path | None = None,
) -> int:
    """Shared ``main`` of the five tracker wrapper scripts.

    Preserves each script's historical CLI contract: ``--smoke`` runs the
    small scale and exits non-zero on a gate failure; the full run writes the
    tracker's ``BENCH_*.json`` next to ``default_output_root`` (the smoke run
    only when ``--output`` is passed explicitly).
    """
    config = load_config(config_path)
    if not isinstance(config, TrackerConfig):
        raise ConfigError(f"{config_path} is not a tracker config")
    parser = argparse.ArgumentParser(description=config.description or config.name)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI scale; exit 1 on a gate failure",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"JSON output path (default: {config.output} at the repo root "
        "in full mode, no file in smoke mode)",
    )
    if config.tracker == "faults":
        parser.add_argument(
            "--seed", type=int, default=11, help="fault-schedule seed (default: 11)"
        )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    report, failures = run_tracker(config, mode=mode, seed=getattr(args, "seed", None))
    print(json.dumps(report, indent=2))

    output = args.output
    if output is None and not args.smoke and default_output_root is not None:
        output = Path(default_output_root) / config.output
    if output is not None:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {output}", file=sys.stderr)

    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    return 1 if (args.smoke and failures) else 0
