"""Benchmark harness: build indexes, measure them, and regenerate the paper's
tables and figures.

* :mod:`repro.bench.harness` — build/measure machinery shared by every experiment.
* :mod:`repro.bench.report` — plain-text table and series formatting.
* :mod:`repro.bench.experiments` — one driver per paper table/figure; the
  ``benchmarks/`` directory calls straight into these.
"""

from repro.bench.harness import (
    IndexMeasurement,
    measure_index,
    run_comparison,
    default_index_factories,
    learned_index_factories,
    tune_page_size,
)
from repro.bench.report import format_table, format_series, relative_factors

__all__ = [
    "IndexMeasurement",
    "measure_index",
    "run_comparison",
    "default_index_factories",
    "learned_index_factories",
    "tune_page_size",
    "format_table",
    "format_series",
    "relative_factors",
]
