"""Benchmark harness: build indexes, measure them, and regenerate the paper's
tables and figures.

* :mod:`repro.bench.harness` — build/measure machinery shared by every experiment.
* :mod:`repro.bench.report` — plain-text table and series formatting.
* :mod:`repro.bench.experiments` — one driver per paper table/figure; the
  ``benchmarks/`` directory calls straight into these.
* :mod:`repro.bench.scenario` — the declarative config schema behind
  ``benchmarks/configs/`` (scenario / tracker / figure kinds).
* :mod:`repro.bench.workloads` — materializes a scenario's dataset, template
  pools, serving stream, and write schedule from its seed.
* :mod:`repro.bench.runner` — :class:`ScenarioRunner`: drives every configured
  index through the serving stack and emits a schema-versioned report.
* :mod:`repro.bench.trackers` — the five serving perf trackers (the thin
  ``benchmarks/bench_*.py`` wrappers call these).
* :mod:`repro.bench.cli` — ``python -m repro.bench.cli`` (experiments plus the
  ``run`` / ``validate`` / ``smoke`` config subcommands).
"""

from repro.bench.harness import (
    IndexMeasurement,
    measure_index,
    run_comparison,
    default_index_factories,
    learned_index_factories,
    tune_page_size,
)
from repro.bench.report import format_table, format_series, relative_factors
from repro.bench.scenario import (
    DatasetConfig,
    FigureConfig,
    IndexConfig,
    ScenarioConfig,
    TrackerConfig,
    WorkloadConfig,
    load_config,
    parse_config,
    validate_directory,
)

__all__ = [
    "IndexMeasurement",
    "measure_index",
    "run_comparison",
    "default_index_factories",
    "learned_index_factories",
    "tune_page_size",
    "format_table",
    "format_series",
    "relative_factors",
    "DatasetConfig",
    "FigureConfig",
    "IndexConfig",
    "ScenarioConfig",
    "TrackerConfig",
    "WorkloadConfig",
    "load_config",
    "parse_config",
    "validate_directory",
]
