"""Command-line entry point for regenerating individual paper experiments.

Usage::

    python -m repro.bench.cli --list
    python -m repro.bench.cli table3 table4
    python -m repro.bench.cli fig7 --rows 100000 --queries 50
    python -m repro.bench.cli all --rows 40000

Each experiment prints the same plain-text table the corresponding benchmark
in ``benchmarks/`` asserts on, so the CLI is the quickest way to regenerate a
single figure without running pytest.
"""

from __future__ import annotations

import argparse
from typing import Callable

from repro.bench import experiments as exp
from repro.bench import extensions as ext

#: Experiment name -> (driver, description).
EXPERIMENTS: dict[str, tuple[Callable[..., exp.ExperimentResult], str]] = {
    "table3": (exp.experiment_table3, "Table 3: dataset and query characteristics"),
    "table4": (exp.experiment_table4, "Table 4: index statistics after optimization"),
    "fig7": (exp.experiment_overall, "Fig. 7/8: overall throughput and index size"),
    "fig9a": (exp.experiment_adaptability, "Fig. 9a: adaptability to workload shift"),
    "fig9b": (exp.experiment_creation_time, "Fig. 9b: index creation time"),
    "fig10": (exp.experiment_dimensions, "Fig. 10: scaling with dimensionality"),
    "fig11a": (exp.experiment_dataset_size, "Fig. 11a: scaling with dataset size"),
    "fig11b": (exp.experiment_selectivity, "Fig. 11b: scaling with query selectivity"),
    "fig12a": (exp.experiment_components, "Fig. 12a: component drill-down"),
    "fig12b": (exp.experiment_optimizers, "Fig. 12b: optimization method comparison"),
    "ext-baselines": (
        ext.experiment_extended_baselines,
        "Supplementary: Grid File and R-tree join the Fig. 7 suite",
    ),
    "ext-outliers": (
        ext.experiment_outlier_mappings,
        "Supplementary (§8): plain vs outlier-buffered functional mappings",
    ),
    "ext-incremental": (
        ext.experiment_incremental_reopt,
        "Supplementary (§8): incremental vs full re-optimization",
    ),
}

#: Experiments that accept the standard (num_rows, queries_per_type) knobs.
_ROWS_KWARG = {
    "table3": "num_rows",
    "table4": "num_rows",
    "fig7": "num_rows",
    "fig9a": "num_rows",
    "fig9b": "num_rows",
    "fig10": "num_rows",
    "fig11b": "num_rows",
    "fig12a": "num_rows",
    "fig12b": "num_rows",
    "ext-baselines": "num_rows",
    "ext-outliers": "num_rows",
    "ext-incremental": "num_rows",
}

#: Experiments whose drivers do not take the ``queries_per_type`` knob.
_NO_QUERIES_KWARG = {"ext-outliers"}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate tables and figures from the Tsunami paper's evaluation.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (see --list), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--rows", type=int, default=None, help="rows per dataset")
    parser.add_argument(
        "--queries", type=int, default=None, help="queries per query type"
    )
    return parser


def run_experiment(name: str, rows: int | None, queries: int | None) -> exp.ExperimentResult:
    """Run a single experiment by name with the requested scale."""
    try:
        driver, _ = EXPERIMENTS[name]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        ) from None
    kwargs = {}
    if rows is not None and name in _ROWS_KWARG:
        kwargs[_ROWS_KWARG[name]] = rows
    if queries is not None and name not in _NO_QUERIES_KWARG:
        kwargs["queries_per_type"] = queries
    return driver(**kwargs)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:8s} {description}")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    for name in names:
        result = run_experiment(name, args.rows, args.queries)
        print(result)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
