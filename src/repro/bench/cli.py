"""Command-line entry point for the benchmark subsystem.

Two families of commands share this module.  The original experiment
regeneration interface::

    python -m repro.bench.cli --list
    python -m repro.bench.cli table3 table4
    python -m repro.bench.cli fig7 --rows 100000 --queries 50
    python -m repro.bench.cli all --rows 40000

and the config-driven scenario harness (PR 8)::

    python -m repro.bench.cli run benchmarks/configs/scenario_point_lookups.json
    python -m repro.bench.cli run benchmarks/configs/tracker_updates.json --mode smoke
    python -m repro.bench.cli validate benchmarks/configs
    python -m repro.bench.cli smoke --configs benchmarks/configs --reports reports/

``run`` executes one config (scenario, tracker, or figure) and prints its
schema-versioned JSON report; a report with violations (or a tracker smoke
gate failure) exits non-zero.  ``validate`` type-checks every config in a
directory without running anything.  ``smoke`` is the CI entry point: it runs
every smoke-tagged config in a directory, writes one report file per config,
and fails if any config fails its gates.

Each experiment prints the same plain-text table the corresponding benchmark
in ``benchmarks/`` asserts on, so the CLI is the quickest way to regenerate a
single figure without running pytest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable

from repro.bench import experiments as exp
from repro.bench import extensions as ext
from repro.common.errors import ConfigError

#: Experiment name -> (driver, description).
EXPERIMENTS: dict[str, tuple[Callable[..., exp.ExperimentResult], str]] = {
    "table3": (exp.experiment_table3, "Table 3: dataset and query characteristics"),
    "table4": (exp.experiment_table4, "Table 4: index statistics after optimization"),
    "fig7": (exp.experiment_overall, "Fig. 7/8: overall throughput and index size"),
    "fig9a": (exp.experiment_adaptability, "Fig. 9a: adaptability to workload shift"),
    "fig9b": (exp.experiment_creation_time, "Fig. 9b: index creation time"),
    "fig10": (exp.experiment_dimensions, "Fig. 10: scaling with dimensionality"),
    "fig11a": (exp.experiment_dataset_size, "Fig. 11a: scaling with dataset size"),
    "fig11b": (exp.experiment_selectivity, "Fig. 11b: scaling with query selectivity"),
    "fig12a": (exp.experiment_components, "Fig. 12a: component drill-down"),
    "fig12b": (exp.experiment_optimizers, "Fig. 12b: optimization method comparison"),
    "ext-baselines": (
        ext.experiment_extended_baselines,
        "Supplementary: Grid File and R-tree join the Fig. 7 suite",
    ),
    "ext-outliers": (
        ext.experiment_outlier_mappings,
        "Supplementary (§8): plain vs outlier-buffered functional mappings",
    ),
    "ext-incremental": (
        ext.experiment_incremental_reopt,
        "Supplementary (§8): incremental vs full re-optimization",
    ),
}

#: Experiments that accept the standard (num_rows, queries_per_type) knobs.
_ROWS_KWARG = {
    "table3": "num_rows",
    "table4": "num_rows",
    "fig7": "num_rows",
    "fig9a": "num_rows",
    "fig9b": "num_rows",
    "fig10": "num_rows",
    "fig11b": "num_rows",
    "fig12a": "num_rows",
    "fig12b": "num_rows",
    "ext-baselines": "num_rows",
    "ext-outliers": "num_rows",
    "ext-incremental": "num_rows",
}

#: Experiments whose drivers do not take the ``queries_per_type`` knob.
_NO_QUERIES_KWARG = {"ext-outliers"}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate tables and figures from the Tsunami paper's evaluation.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (see --list), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--rows", type=int, default=None, help="rows per dataset")
    parser.add_argument(
        "--queries", type=int, default=None, help="queries per query type"
    )
    return parser


def run_experiment(name: str, rows: int | None, queries: int | None) -> exp.ExperimentResult:
    """Run a single experiment by name with the requested scale."""
    try:
        driver, _ = EXPERIMENTS[name]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        ) from None
    kwargs = {}
    if rows is not None and name in _ROWS_KWARG:
        kwargs[_ROWS_KWARG[name]] = rows
    if queries is not None and name not in _NO_QUERIES_KWARG:
        kwargs["queries_per_type"] = queries
    return driver(**kwargs)


# ---------------------------------------------------------------------------
# Config-driven subcommands (run / validate / smoke)
# ---------------------------------------------------------------------------

_SUBCOMMANDS = ("run", "validate", "smoke")


def _run_figure(config, mode: str) -> dict:
    """Run a figure config's experiment driver; the plain-text table goes to
    stdout and the returned report carries it for the archive."""
    kwargs = dict(config.params)
    name = config.experiment
    if config.num_rows is not None and name in _ROWS_KWARG:
        kwargs[_ROWS_KWARG[name]] = config.num_rows
    if config.queries_per_type is not None and name not in _NO_QUERIES_KWARG:
        kwargs["queries_per_type"] = config.queries_per_type
    driver, _ = EXPERIMENTS[name]
    result = driver(**kwargs)
    print(result)
    return {
        "schema_version": 1,
        "kind": "figure",
        "name": config.name,
        "experiment": config.experiment,
        "mode": mode,
        "result": {"name": result.name, "report": result.report, "data": result.data},
        "violations": [],
        "ok": True,
    }


def _run_config(config, mode: str, seed: int | None) -> tuple[dict, list[str]]:
    """Execute one parsed config; returns (report, gate failures)."""
    from repro.bench.runner import run_scenario
    from repro.bench.scenario import FigureConfig, ScenarioConfig, TrackerConfig
    from repro.bench.trackers import run_tracker

    if isinstance(config, ScenarioConfig):
        report = run_scenario(config)
        return report, list(report["violations"])
    if isinstance(config, TrackerConfig):
        report, failures = run_tracker(config, mode=mode, seed=seed)
        return report, failures
    if isinstance(config, FigureConfig):
        return _run_figure(config, mode), []
    raise ConfigError(f"cannot run config of type {type(config).__name__}")


def _write_report(report: dict, output: Path) -> None:
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2, default=str) + "\n")
    print(f"wrote {output}", file=sys.stderr)


def _cmd_run(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench run", description="Run one benchmark config."
    )
    parser.add_argument("config", type=Path, help="path to a *.json config")
    parser.add_argument(
        "--mode",
        choices=("smoke", "full"),
        default="full",
        help="tracker scale to run (scenario/figure configs run as written)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the config's seed (trackers)"
    )
    args = parser.parse_args(argv)

    from repro.bench.scenario import load_config

    config = load_config(args.config)
    report, failures = _run_config(config, args.mode, args.seed)
    print(json.dumps(report, indent=2, default=str))
    if args.output is not None:
        _write_report(report, args.output)
    for failure in failures:
        print(f"FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_validate(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench validate",
        description="Schema-check every config in a directory.",
    )
    parser.add_argument(
        "configs",
        type=Path,
        nargs="?",
        default=Path("benchmarks/configs"),
        help="config directory (default: benchmarks/configs)",
    )
    args = parser.parse_args(argv)

    from repro.bench.scenario import discover_configs, load_config

    failures = 0
    for path in discover_configs(args.configs):
        try:
            config = load_config(path)
        except ConfigError as exc:
            print(f"INVALID {path.name}: {exc}", file=sys.stderr)
            failures += 1
            continue
        kind = type(config).__name__.removesuffix("Config").lower()
        print(f"ok {path.name:40s} kind={kind} name={config.name}")
    if failures:
        print(f"{failures} invalid config(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_smoke(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench smoke",
        description="Run every smoke-tagged config in a directory (the CI matrix).",
    )
    parser.add_argument(
        "--configs",
        type=Path,
        default=Path("benchmarks/configs"),
        help="config directory (default: benchmarks/configs)",
    )
    parser.add_argument(
        "--reports",
        type=Path,
        default=None,
        help="directory to write one <name>.json report per config",
    )
    args = parser.parse_args(argv)

    from repro.bench.scenario import load_config, discover_configs

    failed: list[str] = []
    ran = 0
    for path in discover_configs(args.configs):
        config = load_config(path)
        if not config.smoke:
            continue
        ran += 1
        print(f"=== {path.name} ===", file=sys.stderr)
        try:
            report, failures = _run_config(config, "smoke", None)
        except Exception as exc:  # a crash must fail CI, not abort the matrix
            print(f"FAIL {path.name}: {exc!r}", file=sys.stderr)
            failed.append(path.name)
            continue
        if args.reports is not None:
            _write_report(report, args.reports / f"{config.name}.json")
        if failures:
            for failure in failures:
                print(f"FAIL {path.name}: {failure}", file=sys.stderr)
            failed.append(path.name)
        else:
            print(f"PASS {path.name}", file=sys.stderr)
    print(
        f"smoke matrix: {ran - len(failed)}/{ran} configs passed", file=sys.stderr
    )
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in _SUBCOMMANDS:
        handler = {"run": _cmd_run, "validate": _cmd_validate, "smoke": _cmd_smoke}
        return handler[argv[0]](argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:8s} {description}")
        return 0

    names = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    for name in names:
        result = run_experiment(name, args.rows, args.queries)
        print(result)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
