"""Experiment drivers for the §8 extensions (beyond the paper's tables/figures).

Three supplementary experiments accompany the paper reproduction:

* :func:`experiment_extended_baselines` adds the Grid File and R-tree to the
  Fig. 7-style comparison, covering the traditional indexes the paper cites
  but does not re-benchmark.
* :func:`experiment_outlier_mappings` quantifies the §8 "Complex Correlations"
  extension: on a tightly correlated column pair polluted with a handful of
  outliers, it compares a plain functional mapping, the outlier-buffered
  mapping, and falling back to independent CDF partitioning.
* :func:`experiment_incremental_reopt` quantifies the §8 "Data and Workload
  Shift" extension: after a workload shift it compares doing nothing, the
  incremental per-region re-optimization, and the paper's full re-optimization
  in both adaptation time and post-adaptation scan work.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import GridFileIndex, RTreeIndex
from repro.bench.experiments import (
    ExperimentResult,
    bench_queries_per_type,
    bench_rows,
)
from repro.bench.harness import default_index_factories, run_comparison
from repro.bench.report import format_table
from repro.core.augmented_grid import AugmentedGrid, AugmentedGridConfig
from repro.core.incremental import IncrementalReoptimizer
from repro.core.skeleton import (
    FunctionalMappingStrategy,
    IndependentCDFStrategy,
    Skeleton,
)
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.datasets import load_dataset
from repro.datasets.tpch import tpch_shifted_templates
from repro.datasets.workload_gen import generate_workload
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table


# ---------------------------------------------------------------------------
# Extended baseline comparison (Grid File, R-tree)
# ---------------------------------------------------------------------------


def experiment_extended_baselines(
    num_rows: int | None = None,
    queries_per_type: int | None = None,
    datasets: tuple[str, ...] = ("tpch", "taxi"),
    page_size: int = 2048,
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 7-style comparison including the Grid File and R-tree baselines."""
    num_rows = num_rows or bench_rows()
    queries_per_type = queries_per_type or bench_queries_per_type()
    rows = []
    data: dict = {}
    for name in datasets:
        table, workload = load_dataset(
            name, num_rows=num_rows, queries_per_type=queries_per_type, seed=seed
        )
        factories = default_index_factories(page_size=page_size)
        factories["grid-file"] = lambda: GridFileIndex(page_size=page_size)
        factories["r-tree"] = lambda: RTreeIndex(page_size=page_size)
        measurements = run_comparison(table, workload, factories, dataset_name=name)
        data[name] = measurements
        rows.extend(measurement.as_row() for measurement in measurements)
    return ExperimentResult(
        "Extended baselines: Grid File and R-tree vs the Fig. 7 suite",
        format_table(rows),
        data,
    )


# ---------------------------------------------------------------------------
# Outlier-aware functional mappings (§8 "Complex Correlations")
# ---------------------------------------------------------------------------


def _outlier_dataset(num_rows: int, outlier_fraction: float, seed: int) -> Table:
    """Two tightly correlated columns with a small fraction of outlier rows."""
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 100_000, num_rows)
    y = 2 * x + rng.integers(-100, 101, num_rows)
    num_outliers = max(1, int(outlier_fraction * num_rows))
    outlier_rows = rng.choice(num_rows, size=num_outliers, replace=False)
    y[outlier_rows] += rng.integers(500_000, 2_000_000, num_outliers)
    z = rng.integers(0, 1_000, num_rows)
    return Table.from_arrays("outliers", {"x": x, "y": y, "z": z})


def _mapped_workload(table: Table, num_queries: int, seed: int) -> Workload:
    """Queries filtering the mapped dimension ``y`` with ~1% selectivity."""
    rng = np.random.default_rng(seed)
    low_bound, high_bound = table.bounds("y")
    width = max(1, (high_bound - low_bound) // 100)
    queries = []
    for _ in range(num_queries):
        low = int(rng.integers(low_bound, high_bound - width))
        queries.append(Query.from_ranges({"y": (low, low + width)}))
    return Workload(queries, name="mapped")


def experiment_outlier_mappings(
    num_rows: int | None = None,
    num_queries: int = 100,
    outlier_fraction: float = 0.001,
    partitions: int = 64,
    seed: int = 0,
) -> ExperimentResult:
    """Scan work of plain vs outlier-buffered functional mappings vs no mapping."""
    num_rows = num_rows or bench_rows()
    table = _outlier_dataset(num_rows, outlier_fraction, seed)
    workload = _mapped_workload(table, num_queries, seed + 1)

    mapped_skeleton = Skeleton(
        {
            "x": IndependentCDFStrategy(),
            "y": FunctionalMappingStrategy(target="x"),
            "z": IndependentCDFStrategy(),
        }
    )
    independent_skeleton = Skeleton.all_independent(["x", "y", "z"])
    variants = {
        "independent CDFs (no mapping)": AugmentedGridConfig(
            skeleton=independent_skeleton, partitions={"x": partitions, "y": partitions, "z": 1}
        ),
        "functional mapping (plain)": AugmentedGridConfig(
            skeleton=mapped_skeleton, partitions={"x": partitions, "z": 1}
        ),
        "functional mapping (outlier buffer)": AugmentedGridConfig(
            skeleton=mapped_skeleton,
            partitions={"x": partitions, "z": 1},
            outlier_aware_mappings=True,
            outlier_fraction=max(0.01, 2 * outlier_fraction),
        ),
    }

    rows = []
    data: dict = {}
    for label, config in variants.items():
        working_table = table.subset(np.arange(table.num_rows), name=table.name)
        grid = AugmentedGrid(config)
        permutation = grid.fit(working_table)
        working_table.reorder(permutation)
        scanned = 0
        ranges_total = 0
        for query in workload:
            spans, features = grid.plan(query)
            scanned += features.points_scanned
            ranges_total += features.num_cell_ranges
        rows.append(
            {
                "variant": label,
                "avg points scanned": round(scanned / len(workload), 1),
                "avg cell ranges": round(ranges_total / len(workload), 2),
                "index size (KiB)": round(grid.index_size_bytes() / 1024, 1),
            }
        )
        data[label] = {"scanned": scanned / len(workload), "size": grid.index_size_bytes()}
    return ExperimentResult(
        "Ablation: outlier-aware functional mappings (§8)", format_table(rows), data
    )


# ---------------------------------------------------------------------------
# Incremental re-optimization (§8 "Data and Workload Shift")
# ---------------------------------------------------------------------------


def experiment_incremental_reopt(
    num_rows: int | None = None,
    queries_per_type: int | None = None,
    max_regions: int = 4,
    seed: int = 0,
) -> ExperimentResult:
    """Adaptation time and post-shift scan work: none vs incremental vs full reopt."""
    num_rows = num_rows or bench_rows()
    queries_per_type = queries_per_type or bench_queries_per_type()
    config = TsunamiConfig(optimizer_iterations=2)

    def build_index() -> tuple[TsunamiIndex, Workload, Workload]:
        table, workload = load_dataset(
            "tpch", num_rows=num_rows, queries_per_type=queries_per_type, seed=seed
        )
        index = TsunamiIndex(config).build(table, workload)
        shifted = generate_workload(
            index.table,
            tpch_shifted_templates(queries_per_type=queries_per_type),
            seed=seed + 7,
            name="tpch_shifted",
        )
        return index, workload, shifted

    def average_scanned(index: TsunamiIndex, workload: Workload) -> float:
        _, stats = index.execute_workload(workload)
        return stats.points_scanned / max(len(workload), 1)

    rows = []
    data: dict = {}

    index, _, shifted = build_index()
    rows.append(
        {
            "strategy": "no re-optimization",
            "adaptation (s)": 0.0,
            "avg points scanned (shifted)": round(average_scanned(index, shifted), 1),
        }
    )
    data["none"] = rows[-1]

    index, _, shifted = build_index()
    reoptimizer = IncrementalReoptimizer(index, shift_threshold=0.02, max_regions=max_regions)
    report = reoptimizer.reoptimize(shifted)
    rows.append(
        {
            "strategy": f"incremental ({len(report.regions_reoptimized)} regions)",
            "adaptation (s)": round(report.seconds, 3),
            "avg points scanned (shifted)": round(average_scanned(index, shifted), 1),
        }
    )
    data["incremental"] = rows[-1]

    index, _, shifted = build_index()
    start = time.perf_counter()
    index.reoptimize(shifted)
    full_seconds = time.perf_counter() - start
    rows.append(
        {
            "strategy": "full re-optimization (paper §6.4)",
            "adaptation (s)": round(full_seconds, 3),
            "avg points scanned (shifted)": round(average_scanned(index, shifted), 1),
        }
    )
    data["full"] = rows[-1]

    return ExperimentResult(
        "Ablation: incremental vs full re-optimization (§8)", format_table(rows), data
    )
