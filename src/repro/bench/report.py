"""Plain-text report formatting for benchmark results.

The paper presents results as bar charts and line plots; the harness prints
the same information as aligned text tables (one row per index, or one row per
x-axis point with one column per series), which EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Format ``rows`` (dictionaries) as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[str(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(value.ljust(width) for value, width in zip(line, widths))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def format_series(
    x_label: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    value_format: str = "{:.3g}",
) -> str:
    """Format one figure's line series as a table with one column per series."""
    rows = []
    for position, x in enumerate(x_values):
        row = {x_label: x}
        for name, values in series.items():
            value = values[position] if position < len(values) else float("nan")
            row[name] = value_format.format(value)
        rows.append(row)
    return format_table(rows, columns=[x_label, *series.keys()])


def relative_factors(
    values: Mapping[str, float], reference: str, higher_is_better: bool = True
) -> dict[str, float]:
    """Express every entry of ``values`` as a factor relative to ``reference``.

    With ``higher_is_better`` (e.g. throughput), the factor is
    ``values[reference] / value`` inverted so that the reference gets 1.0 and
    a better entry gets a factor above 1.0; for lower-is-better metrics (e.g.
    index size) pass ``higher_is_better=False``.
    """
    if reference not in values:
        raise KeyError(f"reference {reference!r} not present in {sorted(values)}")
    base = values[reference]
    factors = {}
    for name, value in values.items():
        if higher_is_better:
            factors[name] = value / base if base else float("inf")
        else:
            factors[name] = base / value if value else float("inf")
    return factors
