"""Run a :class:`~repro.bench.scenario.ScenarioConfig` and emit a report.

:class:`ScenarioRunner` executes one scenario end to end:

1. :func:`repro.bench.workloads.build_scenario_data` materializes the table,
   template pool, serving stream, and write schedule — once per point of the
   dimensionality sweep, fully derived from the scenario seed.
2. Every configured index is built over the same table/pool and serves the
   same stream through the real serving stack for its variant: ``plain`` /
   ``delta`` / ``sharded`` run through :class:`~repro.query.engine.QueryEngine`,
   ``lifecycle`` through :class:`~repro.core.lifecycle.LifecycleManager`, and
   ``served`` through concurrent clients on a
   :class:`~repro.serve.frontend.ServingFrontend`.
3. Unless the scenario opts out (``verify: false``, required for fault
   injection), **every** answer is checked against the full-scan oracle —
   including mid-stream, after each interleaved write batch — and the report
   carries machine-independent work counters next to the wall-clock numbers.
4. Smoke thresholds (correctness, throughput floors, index-vs-index speedup)
   are evaluated into ``violations``; CI fails a smoke config whose report
   has any.

Reports are JSON-serializable dictionaries stamped with
``schema_version``/``kind`` and checked by :func:`validate_report`, so every
config in ``benchmarks/configs/`` produces the same envelope.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial

import numpy as np

from repro.baselines import (
    FloodIndex,
    GridFileIndex,
    HyperOctreeIndex,
    KdTreeIndex,
    RTreeIndex,
    SingleDimensionIndex,
    ZOrderIndex,
)
from repro.bench.scenario import SCHEMA_VERSION, IndexConfig, ScenarioConfig
from repro.bench.workloads import ScenarioData, build_fault_plan, build_scenario_data
from repro.common import faults
from repro.common.errors import ConfigError
from repro.common.resilience import FaultPolicy, RetryPolicy
from repro.core.delta import DeltaBufferedIndex
from repro.core.lifecycle import LifecycleConfig, LifecycleManager
from repro.core.sharding import ShardedIndex, scaled_tsunami_config
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import QueryEngine, execute_full_scan
from repro.query.query import Query
from repro.serve import ServingConfig, ServingFrontend
from repro.storage.scan import ScanExecutor
from repro.storage.table import Table

#: Client threads driving the ``served`` variant's closed loop.
_SERVED_CLIENTS = 8


def base_index_factory(index: IndexConfig, num_shards: int = 1):
    """Zero-argument factory for the configured base index kind."""
    if index.kind == "tsunami":
        config = TsunamiConfig(optimizer_iterations=index.optimizer_iterations)
        if num_shards > 1:
            config = scaled_tsunami_config(num_shards, config)
        return partial(TsunamiIndex, config)
    if index.kind == "flood":
        return partial(FloodIndex, optimizer_iterations=index.optimizer_iterations)
    page_kinds = {
        "kdtree": KdTreeIndex,
        "rtree": RTreeIndex,
        "zorder": ZOrderIndex,
        "gridfile": GridFileIndex,
        "octree": HyperOctreeIndex,
    }
    if index.kind in page_kinds:
        return partial(page_kinds[index.kind], page_size=index.page_size)
    if index.kind == "singledim":
        return SingleDimensionIndex
    raise ConfigError(f"unknown index kind {index.kind!r}")  # pragma: no cover


def _degraded_fault_policy() -> FaultPolicy:
    """The degraded serving policy used by faulted scenarios."""
    return FaultPolicy(
        shard_timeout_seconds=5.0,
        retry=RetryPolicy(max_retries=1, backoff_seconds=0.001, seed=7),
        breaker_failure_threshold=3,
        breaker_cooldown_seconds=0.05,
        degradation="degraded",
    )


class _Serving:
    """One built serving stack: how to run batches, insert, and tear down."""

    def __init__(self, index_config: IndexConfig, data: ScenarioData, faulted: bool):
        self.config = index_config
        self.lifecycle: LifecycleManager | None = None
        self.frontend: ServingFrontend | None = None
        self._pool: ThreadPoolExecutor | None = None
        start = time.perf_counter()
        writable = index_config.accepts_writes() or bool(data.writes)

        def delta_factory():
            return DeltaBufferedIndex(
                base_index_factory(index_config),
                merge_threshold=index_config.merge_threshold,
                merge_strategy=index_config.merge_strategy,
            )

        variant = index_config.variant
        if variant == "plain":
            index = base_index_factory(index_config)()
        elif variant == "delta":
            index = delta_factory()
        elif variant == "sharded":
            shard_factory = (
                (
                    lambda: DeltaBufferedIndex(
                        base_index_factory(index_config, index_config.num_shards),
                        merge_threshold=index_config.merge_threshold,
                        merge_strategy=index_config.merge_strategy,
                    )
                )
                if index_config.updatable_shards
                else base_index_factory(index_config, index_config.num_shards)
            )
            index = ShardedIndex(
                shard_factory,
                num_shards=index_config.num_shards,
                parallelism=index_config.parallelism,
                fault_policy=_degraded_fault_policy() if faulted else None,
            )
        elif variant in ("lifecycle", "served"):
            index = delta_factory() if writable or variant == "lifecycle" else (
                base_index_factory(index_config)()
            )
        else:  # pragma: no cover - blocked by config validation
            raise ConfigError(f"unknown variant {variant!r}")

        index.build(data.table, data.build_workload)
        self.index = index
        if variant == "lifecycle":
            self.lifecycle = LifecycleManager(index, LifecycleConfig())
            self.backend = self.lifecycle
        else:
            self.backend = QueryEngine(index=index)
        if variant == "served":
            self.frontend = ServingFrontend(
                self.backend,
                ServingConfig(
                    max_batch_size=64,
                    max_queue_depth=8_192,
                    cache_entries=index_config.cache_entries,
                ),
            )
            self._pool = ThreadPoolExecutor(_SERVED_CLIENTS)
        self.build_seconds = time.perf_counter() - start

    def run_segment(self, queries: list[Query]) -> list:
        if self.frontend is not None:
            assert self._pool is not None
            return list(self._pool.map(self.frontend.query, queries))
        return self.backend.run_batch(queries)

    def insert_many(self, rows: list[dict]) -> None:
        target = self.frontend if self.frontend is not None else self.backend
        target.insert_many(rows)

    def describe(self) -> dict | None:
        if self.frontend is not None:
            return {"serving": self.frontend.describe()}
        if self.lifecycle is not None:
            report = self.lifecycle.report().as_dict()
            report["events"] = report["events"][:20]
            return {"lifecycle": report}
        if isinstance(self.index, ShardedIndex):
            return {"fault_stats": self.index.fault_stats.as_dict()}
        return None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self.frontend is not None:
            self.frontend.close()  # closes the backend too
        else:
            close = getattr(self.backend, "close", None) or getattr(
                self.index, "close", None
            )
            if close is not None:
                close()


class _Oracle:
    """Full-scan ground truth, tracking writes as they land mid-stream.

    The base table's answer per unique query is full-scanned once and cached;
    rows inserted so far are filtered vectorized per query.  Scenario
    workloads aggregate with ``count``, so the expected answer is simply the
    base count plus the matching-insert count.
    """

    def __init__(self, table: Table):
        self._table = table
        self._executor = ScanExecutor(table)
        self._base: dict[Query, float] = {}
        self._inserted: dict[str, list[int]] = {name: [] for name in table.column_names}
        self._arrays: dict[str, np.ndarray] | None = None

    def absorb(self, rows: list[dict]) -> None:
        for row in rows:
            for name, value in row.items():
                self._inserted[name].append(value)
        self._arrays = None

    def expected(self, query: Query) -> float:
        base = self._base.get(query)
        if base is None:
            base, _ = execute_full_scan(self._table, query, self._executor)
            self._base[query] = base
        pending = next(iter(self._inserted.values()), [])
        if not pending:
            return base
        if self._arrays is None:
            self._arrays = {
                name: np.asarray(values, dtype=np.int64)
                for name, values in self._inserted.items()
            }
        mask = np.ones(len(pending), dtype=bool)
        for dimension, (low, high) in query.filters().items():
            mask &= (self._arrays[dimension] >= low) & (self._arrays[dimension] <= high)
        return base + float(np.count_nonzero(mask))


class ScenarioRunner:
    """Executes a scenario config into a schema-versioned report."""

    def __init__(self, config: ScenarioConfig):
        config.validate()
        self.config = config

    # -- measurement ------------------------------------------------------------------

    def _segments(self, data: ScenarioData):
        """Split the stream at write positions: [(queries, rows-to-insert-after)]."""
        stream = data.stream
        cuts = [(event.position, event.rows) for event in data.writes]
        segments = []
        last = 0
        for position, rows in cuts:
            position = min(position, len(stream))
            segments.append((stream[last:position], rows))
            last = position
        if last < len(stream):
            segments.append((stream[last:], None))
        return segments or [(stream, None)]

    def _measure_once(self, index_config: IndexConfig, data: ScenarioData) -> dict:
        faulted = self.config.faults is not None
        serving = _Serving(index_config, data, faulted)
        plan = build_fault_plan(self.config, data) if faulted else None
        outcomes: list = []
        insert_log: list[tuple[int, list[dict]]] = []
        rows_inserted = 0
        insert_seconds = 0.0
        try:
            # Warm the plan caches so every index measures steady state.
            warmup = data.stream[: min(64, len(data.stream))]
            serving.run_segment(warmup)

            start = time.perf_counter()
            if plan is not None:
                faults.install(plan)
            try:
                for queries, rows in self._segments(data):
                    outcomes.extend(serving.run_segment(queries))
                    if rows is not None:
                        write_start = time.perf_counter()
                        serving.insert_many(rows)
                        insert_seconds += time.perf_counter() - write_start
                        insert_log.append((len(outcomes), rows))
                        rows_inserted += len(rows)
            finally:
                if plan is not None:
                    faults.uninstall()
            elapsed = time.perf_counter() - start
            details = serving.describe()
        finally:
            serving.close()

        mismatches = 0
        if self.config.verify:
            oracle = _Oracle(data.table)
            cursor = 0
            for position, outcome in enumerate(outcomes):
                while cursor < len(insert_log) and insert_log[cursor][0] <= position:
                    oracle.absorb(insert_log[cursor][1])
                    cursor += 1
                if outcome.value != oracle.expected(data.stream[position]):
                    mismatches += 1

        points = sum(outcome.stats.points_scanned for outcome in outcomes)
        ranges = sum(outcome.stats.cell_ranges for outcome in outcomes)
        values_scanned = sum(outcome.stats.values_scanned for outcome in outcomes)
        bytes_scanned = sum(outcome.stats.bytes_scanned for outcome in outcomes)
        num_queries = max(len(outcomes), 1)
        result = {
            "index": index_config.name,
            "kind": index_config.kind,
            "variant": index_config.variant,
            "build_seconds": round(serving.build_seconds, 4),
            "num_queries": len(outcomes),
            "seconds_total": round(elapsed, 4),
            "queries_per_second": round(len(outcomes) / elapsed, 1) if elapsed else 0.0,
            "rows_scanned_per_sec": round(points / elapsed, 1) if elapsed else 0.0,
            "avg_points_scanned": round(points / num_queries, 1),
            "avg_cell_ranges": round(ranges / num_queries, 2),
            "values_scanned": values_scanned,
            "bytes_scanned": bytes_scanned,
            # Machine-independent compression headline: an all-int64 scan sits
            # at exactly 8.0 bytes per value read.
            "bytes_per_value_scanned": (
                round(bytes_scanned / values_scanned, 3) if values_scanned else None
            ),
            "rows_inserted": rows_inserted,
            # Sustained insert rate over the insert_many calls alone (merge
            # cost included — that is the point of measuring it).
            "insert_seconds": round(insert_seconds, 4),
            "rows_inserted_per_second": (
                round(rows_inserted / insert_seconds, 1)
                if rows_inserted and insert_seconds
                else None
            ),
            "correct": mismatches == 0 if self.config.verify else None,
            "mismatches": mismatches if self.config.verify else None,
        }
        if plan is not None:
            result["injected_faults"] = len(plan.injections)
        if details:
            result.update(details)
        return result

    def _measure(self, index_config: IndexConfig, data: ScenarioData) -> dict:
        runs = [
            self._measure_once(index_config, data)
            for _ in range(self.config.repetitions)
        ]
        best = max(runs, key=lambda run: run["queries_per_second"])
        if len(runs) > 1:
            best = dict(best)
            best["repetitions"] = {
                "count": len(runs),
                "queries_per_second": [run["queries_per_second"] for run in runs],
            }
        return best

    # -- entry point ------------------------------------------------------------------

    def run(self) -> dict:
        """Execute the whole scenario; returns the JSON-ready report."""
        sweep_results = []
        for num_dimensions in self.config.dataset.dimension_sweep():
            data = build_scenario_data(self.config, num_dimensions)
            cell = {
                "num_dimensions": int(num_dimensions),
                "num_rows": data.table.num_rows,
                "num_queries": len(data.stream),
                "num_templates": len(data.build_workload),
                "write_events": len(data.writes),
                # Storage footprint + per-column dtype breakdown, so the
                # narrow-dtype compression ratio shows in every artifact.
                "table": data.table.describe(),
                "indexes": [
                    self._measure(index_config, data)
                    for index_config in self.config.indexes
                ],
            }
            if data.categorical is not None:
                cell["categorical_reordering"] = data.categorical
            sweep_results.append(cell)

        violations = self._check_thresholds(sweep_results)
        report = {
            "schema_version": SCHEMA_VERSION,
            "kind": "scenario",
            "name": self.config.name,
            "description": self.config.description,
            "seed": self.config.seed,
            "smoke": self.config.smoke,
            "config": self.config.to_dict(),
            "results": sweep_results,
            "violations": violations,
            "ok": not violations,
        }
        validate_report(report)
        return report

    def _check_thresholds(self, sweep_results: list[dict]) -> list[str]:
        thresholds = self.config.thresholds
        violations = []
        for cell in sweep_results:
            label = f"d={cell['num_dimensions']}"
            by_name = {entry["index"]: entry for entry in cell["indexes"]}
            for entry in cell["indexes"]:
                if thresholds.require_correct and entry["correct"] is False:
                    violations.append(
                        f"{label}: {entry['index']} returned {entry['mismatches']} "
                        "answers differing from the full-scan oracle"
                    )
                if (
                    thresholds.min_queries_per_second is not None
                    and entry["queries_per_second"] < thresholds.min_queries_per_second
                ):
                    violations.append(
                        f"{label}: {entry['index']} served "
                        f"{entry['queries_per_second']} qps, below the "
                        f"{thresholds.min_queries_per_second} qps floor"
                    )
                if (
                    thresholds.max_bytes_per_value is not None
                    and entry.get("bytes_per_value_scanned") is not None
                    and entry["bytes_per_value_scanned"] > thresholds.max_bytes_per_value
                ):
                    violations.append(
                        f"{label}: {entry['index']} scanned "
                        f"{entry['bytes_per_value_scanned']} bytes per value, above "
                        f"the {thresholds.max_bytes_per_value} ceiling "
                        "(int64 baseline is 8.0)"
                    )
            if thresholds.max_table_bytes_per_value is not None:
                footprint = cell["table"]["bytes_per_value"]
                if footprint is not None and footprint > thresholds.max_table_bytes_per_value:
                    violations.append(
                        f"{label}: table stores {footprint} bytes per value, above "
                        f"the {thresholds.max_table_bytes_per_value} ceiling "
                        "(all-int64 baseline is 8.0)"
                    )
            if thresholds.min_relative_update_rate is not None:
                rates = {
                    entry["index"]: entry["rows_inserted_per_second"]
                    for entry in cell["indexes"]
                    if entry.get("rows_inserted_per_second")
                }
                fastest = max(rates.values(), default=0.0)
                for name, rate in rates.items():
                    relative = rate / fastest if fastest else 1.0
                    if relative < thresholds.min_relative_update_rate:
                        violations.append(
                            f"{label}: {name} sustained {rate} rows/s, "
                            f"{round(relative, 3)}x of the fastest writer "
                            f"({fastest} rows/s), below the "
                            f"{thresholds.min_relative_update_rate}x floor"
                        )
            if thresholds.speedup_of is not None and thresholds.speedup_over is not None:
                fast = by_name[thresholds.speedup_of]["queries_per_second"]
                slow = by_name[thresholds.speedup_over]["queries_per_second"]
                ratio = round(fast / slow, 3) if slow else float("inf")
                if ratio < thresholds.min_speedup:
                    violations.append(
                        f"{label}: {thresholds.speedup_of} is {ratio}x of "
                        f"{thresholds.speedup_over}, below the "
                        f"{thresholds.min_speedup}x floor"
                    )
        return violations


#: Keys every scenario report must carry (the report schema, v1).
_REPORT_KEYS = (
    "schema_version",
    "kind",
    "name",
    "config",
    "results",
    "violations",
    "ok",
)

_RESULT_KEYS = ("num_dimensions", "num_rows", "num_queries", "table", "indexes")

_INDEX_KEYS = (
    "index",
    "kind",
    "variant",
    "queries_per_second",
    "rows_scanned_per_sec",
    "avg_points_scanned",
    "bytes_scanned",
    "correct",
)


def validate_report(report: dict) -> dict:
    """Schema-check a scenario report; raises :class:`ConfigError` on violation."""
    missing = [key for key in _REPORT_KEYS if key not in report]
    if missing:
        raise ConfigError(f"scenario report is missing keys {missing}")
    if report["schema_version"] != SCHEMA_VERSION:
        raise ConfigError(
            f"scenario report has schema_version {report['schema_version']!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    for cell in report["results"]:
        missing = [key for key in _RESULT_KEYS if key not in cell]
        if missing:
            raise ConfigError(f"scenario result cell is missing keys {missing}")
        for entry in cell["indexes"]:
            missing = [key for key in _INDEX_KEYS if key not in entry]
            if missing:
                raise ConfigError(
                    f"index entry {entry.get('index')!r} is missing keys {missing}"
                )
    return report


def run_scenario(config: ScenarioConfig) -> dict:
    """Convenience wrapper: run ``config`` and return its validated report."""
    return ScenarioRunner(config).run()
