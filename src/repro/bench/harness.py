"""Measurement machinery shared by every benchmark.

An experiment builds one or more indexes over a (table, workload) pair and
records, per index:

* correctness — every query's answer must equal the full-scan answer;
* average per-query wall-clock time and query throughput;
* machine-independent work counters: average points scanned and cell ranges
  per query (these are what the paper's cost model charges for, and they are
  what EXPERIMENTS.md compares against the paper since absolute wall-clock on
  a Python substrate is not meaningful);
* index size in bytes and build time split into data sorting vs optimization
  (the two bar components of Fig. 9b).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence


from repro.baselines import (
    FloodIndex,
    HyperOctreeIndex,
    KdTreeIndex,
    SingleDimensionIndex,
    ZOrderIndex,
)
from repro.baselines.base import ClusteredIndex
from repro.core.tsunami import TsunamiConfig, TsunamiIndex
from repro.query.engine import execute_full_scan
from repro.query.workload import Workload
from repro.storage.table import Table

IndexFactory = Callable[[], ClusteredIndex]


@dataclass
class IndexMeasurement:
    """Everything measured for one index on one dataset/workload."""

    index_name: str
    dataset: str
    num_rows: int
    num_queries: int
    build_sort_seconds: float
    build_optimize_seconds: float
    avg_query_seconds: float
    avg_points_scanned: float
    avg_cell_ranges: float
    index_size_bytes: int
    correct: bool
    details: dict = field(default_factory=dict)

    @property
    def build_seconds(self) -> float:
        """Total build time (sorting plus optimization)."""
        return self.build_sort_seconds + self.build_optimize_seconds

    @property
    def queries_per_second(self) -> float:
        """Query throughput (the y-axis of Fig. 7)."""
        if self.avg_query_seconds <= 0:
            return float("inf")
        return 1.0 / self.avg_query_seconds

    def as_row(self) -> dict:
        """Flat dictionary representation for report tables."""
        return {
            "index": self.index_name,
            "dataset": self.dataset,
            "rows": self.num_rows,
            "queries/s": round(self.queries_per_second, 1),
            "avg query (ms)": round(self.avg_query_seconds * 1e3, 3),
            "avg scanned": round(self.avg_points_scanned, 1),
            "avg cell ranges": round(self.avg_cell_ranges, 2),
            "index size (KiB)": round(self.index_size_bytes / 1024, 1),
            "build (s)": round(self.build_seconds, 2),
            "optimize (s)": round(self.build_optimize_seconds, 2),
            "correct": self.correct,
        }


def expected_answers(table: Table, workload: Workload) -> list[float]:
    """Ground-truth answers for every query, computed by full scans."""
    return [execute_full_scan(table, query)[0] for query in workload]


def measure_index(
    index: ClusteredIndex,
    table: Table,
    workload: Workload,
    dataset_name: str = "dataset",
    expected: Sequence[float] | None = None,
    verify: bool = True,
) -> IndexMeasurement:
    """Build ``index`` over ``table`` and measure it on ``workload``."""
    index.build(table, workload)

    if verify and expected is None:
        expected = expected_answers(table, workload)

    total_seconds = 0.0
    total_scanned = 0
    total_ranges = 0
    correct = True
    for position, query in enumerate(workload):
        start = time.perf_counter()
        result = index.execute(query)
        total_seconds += time.perf_counter() - start
        total_scanned += result.stats.points_scanned
        total_ranges += result.stats.cell_ranges
        if verify and expected is not None and result.value != expected[position]:
            correct = False

    num_queries = max(len(workload), 1)
    return IndexMeasurement(
        index_name=index.name,
        dataset=dataset_name,
        num_rows=table.num_rows,
        num_queries=len(workload),
        build_sort_seconds=index.build_report.sort_seconds,
        build_optimize_seconds=index.build_report.optimize_seconds,
        avg_query_seconds=total_seconds / num_queries,
        avg_points_scanned=total_scanned / num_queries,
        avg_cell_ranges=total_ranges / num_queries,
        index_size_bytes=index.index_size_bytes(),
        correct=correct,
        details=index.describe(),
    )


def run_comparison(
    table: Table,
    workload: Workload,
    factories: Mapping[str, IndexFactory],
    dataset_name: str = "dataset",
    verify: bool = True,
) -> list[IndexMeasurement]:
    """Measure every index produced by ``factories`` on the same data and workload."""
    expected = expected_answers(table, workload) if verify else None
    measurements = []
    for name, factory in factories.items():
        index = factory()
        measurement = measure_index(
            index,
            table,
            workload,
            dataset_name=dataset_name,
            expected=expected,
            verify=verify,
        )
        measurement.index_name = name
        measurements.append(measurement)
    return measurements


def tune_page_size(
    index_class: type[ClusteredIndex],
    table: Table,
    workload: Workload,
    candidates: Sequence[int] = (512, 2048, 8192),
) -> int:
    """Pick the page size minimizing average scanned points for a tree/page index.

    This mirrors the paper's statement that the non-learned baselines' page
    sizes were tuned per dataset/workload (§6.3).
    """
    sample_queries = Workload(list(workload)[: min(len(workload), 50)])
    best_size = candidates[0]
    best_scanned = float("inf")
    for page_size in candidates:
        index = index_class(page_size=page_size)
        index.build(table, sample_queries)
        _, stats = index.execute_workload(sample_queries)
        if stats.points_scanned < best_scanned:
            best_scanned = stats.points_scanned
            best_size = page_size
    return best_size


def default_index_factories(
    optimizer_iterations: int = 4,
    target_points_per_cell: int = 128,
    page_size: int = 2048,
    include_learned: bool = True,
) -> dict[str, IndexFactory]:
    """The standard index suite compared in Fig. 7 / Fig. 8."""
    factories: dict[str, IndexFactory] = {
        "single-dim": SingleDimensionIndex,
        "z-order": lambda: ZOrderIndex(page_size=page_size),
        "hyperoctree": lambda: HyperOctreeIndex(page_size=page_size),
        "kd-tree": lambda: KdTreeIndex(page_size=page_size),
    }
    if include_learned:
        factories["flood"] = lambda: FloodIndex(
            optimizer_iterations=optimizer_iterations,
            target_points_per_cell=target_points_per_cell,
        )
        factories["tsunami"] = lambda: TsunamiIndex(
            TsunamiConfig(
                optimizer_iterations=optimizer_iterations,
                target_points_per_cell=target_points_per_cell,
            )
        )
    return factories


def learned_index_factories(
    optimizer_iterations: int = 4, target_points_per_cell: int = 128
) -> dict[str, IndexFactory]:
    """Only the learned indexes (used by the scaling sweeps to keep runtime low)."""
    return {
        "flood": lambda: FloodIndex(
            optimizer_iterations=optimizer_iterations,
            target_points_per_cell=target_points_per_cell,
        ),
        "tsunami": lambda: TsunamiIndex(
            TsunamiConfig(
                optimizer_iterations=optimizer_iterations,
                target_points_per_cell=target_points_per_cell,
            )
        ),
    }
