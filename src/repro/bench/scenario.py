"""Declarative scenario configs: one JSON file per reproducible result.

Every benchmark in this repository — the paper figures, the five serving
perf trackers, and the survey-grade workload matrix — is described by a
config file in ``benchmarks/configs/`` and reproduced with one command::

    python -m repro.bench.cli run benchmarks/configs/<name>.json

A config is one of three kinds:

* ``"scenario"`` — the generic workload matrix: a dataset axis, a workload
  axis (read/write mix, point-lookup fraction, categorical hybrid
  predicates, selectivity, zipf skew, named drift schedules), and a list of
  indexes-under-test (any baseline or Tsunami, optionally wrapped as
  delta-buffered / sharded / lifecycle-managed / served through the
  concurrent front-end).  Run by
  :class:`~repro.bench.runner.ScenarioRunner`, which verifies every answer
  against the full-scan oracle and emits a schema-versioned report.
* ``"tracker"`` — one of the five serving perf trackers whose
  ``BENCH_*.json`` shapes gate CI (``benchmarks/bench_*.py`` are thin
  wrappers over these configs; see :mod:`repro.bench.trackers`).
* ``"figure"`` — a paper table/figure regenerated through the experiment
  drivers in :mod:`repro.bench.experiments`.

Configs are validated eagerly and strictly: unknown keys, unknown index
kinds, and inconsistent axis combinations raise a typed
:class:`~repro.common.errors.ConfigError` *before* anything is built, so
``python -m repro.bench.cli validate benchmarks/configs`` can schema-check
the whole registry in milliseconds in CI.

All randomness in a scenario derives from the single ``seed`` field:
dataset generation, template placement, stream order, write batches, and
fault-plan schedules all use child generators spawned from it
(:func:`repro.common.rng.spawn_rngs`), so two runs of the same config see
byte-identical query streams.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.common.errors import ConfigError

#: Version stamped into every config and report this subsystem emits.
SCHEMA_VERSION = 1

#: Dataset sources the scenario kind understands.
DATASET_SOURCES = ("correlated_xyz", "uniform", "correlated", "registry")

#: Index kinds runnable under a scenario (the full baseline set + Tsunami).
INDEX_KINDS = (
    "tsunami",
    "flood",
    "kdtree",
    "rtree",
    "zorder",
    "gridfile",
    "octree",
    "singledim",
)

#: How an index-under-test is wrapped for serving.
INDEX_VARIANTS = ("plain", "delta", "sharded", "lifecycle", "served")

#: Named drift schedules (see repro.bench.workloads.drift_phases).
DRIFT_SCHEDULES = ("none", "step_shift", "rotating_hotspot")

#: The five serving perf trackers (see repro.bench.trackers).
TRACKER_NAMES = ("throughput", "updates", "shards", "serving", "faults")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _check_keys(section: str, mapping: Mapping, allowed: Sequence[str]) -> None:
    unknown = set(mapping) - set(allowed)
    _require(not unknown, f"{section}: unknown keys {sorted(unknown)}")


@dataclass(frozen=True)
class CategoricalDatasetConfig:
    """An extra dictionary-encoded string column added to a synthetic dataset."""

    dimension: str = "category"
    cardinality: int = 24
    #: Zipf-ish concentration of value frequencies; 0 = uniform.
    skew: float = 1.1

    def validate(self) -> None:
        _require(bool(self.dimension), "dataset.categorical.dimension must be non-empty")
        _require(
            2 <= self.cardinality <= 10_000,
            f"dataset.categorical.cardinality must be in [2, 10000], "
            f"got {self.cardinality}",
        )
        _require(self.skew >= 0, "dataset.categorical.skew must be >= 0")


@dataclass(frozen=True)
class DatasetConfig:
    """Which table the scenario builds, and at what scale."""

    source: str = "correlated_xyz"
    num_rows: int = 20_000
    #: int, or a list for a dimensionality sweep (synthetic sources only).
    num_dimensions: int | tuple[int, ...] = 3
    #: Storage domain of synthetic dimensions.
    domain: int = 100_000
    #: Registry dataset name (source == "registry" only).
    registry_name: str | None = None
    categorical: CategoricalDatasetConfig | None = None

    def validate(self) -> None:
        _require(
            self.source in DATASET_SOURCES,
            f"dataset.source must be one of {DATASET_SOURCES}, got {self.source!r}",
        )
        _require(self.num_rows >= 1, f"dataset.num_rows must be >= 1, got {self.num_rows}")
        _require(self.domain >= 2, f"dataset.domain must be >= 2, got {self.domain}")
        for count in self.dimension_sweep():
            _require(
                count >= 2, f"dataset.num_dimensions entries must be >= 2, got {count}"
            )
        if self.source == "registry":
            _require(
                self.registry_name is not None,
                "dataset.registry_name is required when source is 'registry'",
            )
            _require(
                self.categorical is None,
                "dataset.categorical only applies to synthetic sources",
            )
        if self.source == "correlated_xyz":
            _require(
                self.dimension_sweep() == (3,),
                "dataset.num_dimensions must be 3 (x, y, z) for correlated_xyz",
            )
        if self.categorical is not None:
            self.categorical.validate()

    def dimension_sweep(self) -> tuple[int, ...]:
        """The dimensionality axis: one entry per table the scenario builds."""
        if isinstance(self.num_dimensions, int):
            return (self.num_dimensions,)
        return tuple(self.num_dimensions)


@dataclass(frozen=True)
class WriteMixConfig:
    """The read/write mix axis: inserts interleaved into the query stream."""

    write_fraction: float = 0.1
    rows_per_write: int = 64

    def validate(self) -> None:
        _require(
            0.0 < self.write_fraction < 1.0,
            f"workload.writes.write_fraction must be in (0, 1), "
            f"got {self.write_fraction}",
        )
        _require(
            self.rows_per_write >= 1,
            f"workload.writes.rows_per_write must be >= 1, got {self.rows_per_write}",
        )


@dataclass(frozen=True)
class DriftConfig:
    """The drift-schedule axis: how the template pool moves over the stream."""

    schedule: str = "none"
    phases: int = 2

    def validate(self) -> None:
        _require(
            self.schedule in DRIFT_SCHEDULES,
            f"workload.drift.schedule must be one of {DRIFT_SCHEDULES}, "
            f"got {self.schedule!r}",
        )
        _require(
            self.phases >= 2 or self.schedule == "none",
            f"workload.drift.phases must be >= 2, got {self.phases}",
        )


@dataclass(frozen=True)
class WorkloadConfig:
    """The workload axes of one scenario."""

    num_templates: int = 24
    num_queries: int = 512
    #: Zipf exponent of template repetition; None repeats templates uniformly.
    zipf_theta: float | None = 1.2
    #: Target per-dimension selectivity of range filters.
    selectivity: float = 0.05
    #: How many dimensions each range template filters.
    dims_per_query: int = 2
    #: Fraction of templates that are point lookups (equality on every dim).
    point_lookup_fraction: float = 0.0
    #: Fraction of templates carrying a categorical equality + numeric ranges.
    categorical_fraction: float = 0.0
    #: Apply workload-aware categorical reordering before building indexes.
    reorder_categorical: bool = False
    writes: WriteMixConfig | None = None
    drift: DriftConfig = field(default_factory=DriftConfig)

    def validate(self, dataset: DatasetConfig) -> None:
        _require(
            self.num_templates >= 1,
            f"workload.num_templates must be >= 1, got {self.num_templates}",
        )
        _require(
            self.num_queries >= 1,
            f"workload.num_queries must be >= 1, got {self.num_queries}",
        )
        _require(
            self.zipf_theta is None or self.zipf_theta > 1.0,
            f"workload.zipf_theta must be > 1 or null, got {self.zipf_theta}",
        )
        _require(
            0.0 < self.selectivity <= 1.0,
            f"workload.selectivity must be in (0, 1], got {self.selectivity}",
        )
        _require(
            self.dims_per_query >= 1,
            f"workload.dims_per_query must be >= 1, got {self.dims_per_query}",
        )
        for name, fraction in (
            ("point_lookup_fraction", self.point_lookup_fraction),
            ("categorical_fraction", self.categorical_fraction),
        ):
            _require(
                0.0 <= fraction <= 1.0, f"workload.{name} must be in [0, 1], got {fraction}"
            )
        _require(
            self.point_lookup_fraction + self.categorical_fraction <= 1.0,
            "workload.point_lookup_fraction + categorical_fraction must be <= 1",
        )
        if self.categorical_fraction > 0 or self.reorder_categorical:
            _require(
                dataset.categorical is not None,
                "workload.categorical_fraction/reorder_categorical require "
                "dataset.categorical",
            )
        if dataset.source == "registry":
            _require(
                self.point_lookup_fraction == 0 and self.categorical_fraction == 0,
                "point-lookup and categorical axes apply to synthetic sources only",
            )
        if self.writes is not None:
            self.writes.validate()
        self.drift.validate()


@dataclass(frozen=True)
class FaultsConfig:
    """Optional seeded fault injection at the shard-execution site."""

    error_probability: float = 0.0
    delay_probability: float = 0.0
    delay_seconds: float = 0.001

    def validate(self) -> None:
        for name, p in (
            ("error_probability", self.error_probability),
            ("delay_probability", self.delay_probability),
        ):
            _require(0.0 <= p < 1.0, f"faults.{name} must be in [0, 1), got {p}")
        _require(
            self.delay_seconds >= 0, f"faults.delay_seconds must be >= 0"
        )
        _require(
            self.error_probability > 0 or self.delay_probability > 0,
            "faults section present but both probabilities are zero",
        )


@dataclass(frozen=True)
class IndexConfig:
    """One index-under-test: a base kind plus a serving variant."""

    kind: str
    variant: str = "plain"
    label: str | None = None
    optimizer_iterations: int = 2
    page_size: int = 2048
    merge_threshold: int = 1_000_000
    #: How delta-buffered wrappers fold merges: "local" reorganizes only the
    #: touched Grid Tree regions, "rebuild" rebuilds the whole wrapped index.
    merge_strategy: str = "local"
    num_shards: int = 4
    parallelism: int = 0
    updatable_shards: bool = False
    cache_entries: int = 0

    def validate(self) -> None:
        _require(
            self.kind in INDEX_KINDS,
            f"index.kind must be one of {INDEX_KINDS}, got {self.kind!r}",
        )
        _require(
            self.variant in INDEX_VARIANTS,
            f"index.variant must be one of {INDEX_VARIANTS}, got {self.variant!r}",
        )
        _require(self.page_size >= 1, f"index.page_size must be >= 1")
        _require(self.merge_threshold >= 1, "index.merge_threshold must be >= 1")
        _require(
            self.merge_strategy in ("local", "rebuild"),
            f"index.merge_strategy must be 'local' or 'rebuild', "
            f"got {self.merge_strategy!r}",
        )
        _require(self.num_shards >= 1, "index.num_shards must be >= 1")
        _require(self.parallelism >= 0, "index.parallelism must be >= 0")
        _require(self.cache_entries >= 0, "index.cache_entries must be >= 0")

    @property
    def name(self) -> str:
        """Label used in reports (unique within one scenario's index list)."""
        if self.label:
            return self.label
        return self.kind if self.variant == "plain" else f"{self.kind}-{self.variant}"

    def accepts_writes(self) -> bool:
        """Whether this configuration can absorb inserts."""
        if self.variant in ("delta", "lifecycle"):
            return True
        if self.variant in ("sharded", "served") and self.updatable_shards:
            return True
        return self.variant == "served"


@dataclass(frozen=True)
class ThresholdsConfig:
    """Smoke gates evaluated by the runner; violations fail CI."""

    require_correct: bool = True
    min_queries_per_second: float | None = None
    #: Gate: results[speedup_over] must not be faster than results[speedup_of].
    speedup_of: str | None = None
    speedup_over: str | None = None
    min_speedup: float = 1.0
    #: Gate: bytes scanned per value read must stay at or below this ceiling
    #: (an all-int64 scan sits at exactly 8.0; 4.0 enforces a 2x dtype win).
    max_bytes_per_value: float | None = None
    #: Gate: table footprint in bytes per stored value (all-int64 is 8.0).
    max_table_bytes_per_value: float | None = None
    #: Gate: every write-accepting index's sustained insert rate
    #: (rows_inserted_per_second) must reach at least this fraction of the
    #: fastest writer's rate in the same cell.
    min_relative_update_rate: float | None = None

    def validate(self, index_names: Sequence[str]) -> None:
        if self.speedup_of is not None or self.speedup_over is not None:
            _require(
                self.speedup_of in index_names and self.speedup_over in index_names,
                f"thresholds.speedup_of/speedup_over must name configured "
                f"indexes {list(index_names)}",
            )
            _require(self.min_speedup > 0, "thresholds.min_speedup must be > 0")
        if self.max_bytes_per_value is not None:
            _require(
                self.max_bytes_per_value > 0,
                "thresholds.max_bytes_per_value must be > 0",
            )
        if self.max_table_bytes_per_value is not None:
            _require(
                self.max_table_bytes_per_value > 0,
                "thresholds.max_table_bytes_per_value must be > 0",
            )
        if self.min_relative_update_rate is not None:
            _require(
                0.0 < self.min_relative_update_rate <= 1.0,
                "thresholds.min_relative_update_rate must be in (0, 1]",
            )


@dataclass(frozen=True)
class ScenarioConfig:
    """A fully validated scenario: dataset x workload x indexes-under-test."""

    name: str
    description: str = ""
    smoke: bool = False
    seed: int = 0
    repetitions: int = 1
    verify: bool = True
    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    indexes: tuple[IndexConfig, ...] = ()
    faults: FaultsConfig | None = None
    thresholds: ThresholdsConfig = field(default_factory=ThresholdsConfig)

    def validate(self) -> None:
        _require(bool(self.name), "scenario name must be non-empty")
        _require(self.repetitions >= 1, "repetitions must be >= 1")
        _require(len(self.indexes) >= 1, "a scenario needs at least one index")
        self.dataset.validate()
        self.workload.validate(self.dataset)
        names = [index.name for index in self.indexes]
        _require(
            len(set(names)) == len(names),
            f"index labels must be unique, got {names}",
        )
        for index in self.indexes:
            index.validate()
            if self.workload.writes is not None:
                _require(
                    index.accepts_writes(),
                    f"index {index.name!r} cannot absorb the read/write mix; "
                    "use variant delta/lifecycle/served or updatable shards",
                )
            if index.variant == "lifecycle" and self.repetitions != 1:
                raise ConfigError(
                    "lifecycle variants are stateful; repetitions must be 1"
                )
        if self.workload.writes is not None:
            _require(
                self.repetitions == 1,
                "read/write scenarios are stateful; repetitions must be 1",
            )
        if self.faults is not None:
            self.faults.validate()
            _require(
                all(index.variant == "sharded" for index in self.indexes),
                "fault injection requires every index to use the sharded variant",
            )
            _require(
                not self.verify,
                "faulted scenarios serve degraded partial answers; set "
                '"verify": false',
            )
        self.thresholds.validate(names)

    # -- (de)serialization ------------------------------------------------------

    @classmethod
    def from_dict(cls, raw: Mapping) -> "ScenarioConfig":
        """Parse and validate a raw JSON mapping (strict: unknown keys fail)."""
        _check_keys(
            "scenario",
            raw,
            [
                "schema_version",
                "kind",
                "name",
                "description",
                "smoke",
                "seed",
                "repetitions",
                "verify",
                "dataset",
                "workload",
                "indexes",
                "faults",
                "thresholds",
            ],
        )
        version = raw.get("schema_version", SCHEMA_VERSION)
        _require(
            version == SCHEMA_VERSION,
            f"unsupported schema_version {version!r} (expected {SCHEMA_VERSION})",
        )
        kind = raw.get("kind", "scenario")
        _require(kind == "scenario", f"ScenarioConfig cannot parse kind {kind!r}")

        dataset_raw = dict(raw.get("dataset", {}))
        _check_keys(
            "dataset",
            dataset_raw,
            ["source", "num_rows", "num_dimensions", "domain", "registry_name", "categorical"],
        )
        categorical_raw = dataset_raw.pop("categorical", None)
        if categorical_raw is not None:
            _check_keys(
                "dataset.categorical", categorical_raw, ["dimension", "cardinality", "skew"]
            )
            dataset_raw["categorical"] = CategoricalDatasetConfig(**categorical_raw)
        dims = dataset_raw.get("num_dimensions")
        if isinstance(dims, list):
            dataset_raw["num_dimensions"] = tuple(dims)
        dataset = DatasetConfig(**dataset_raw)

        workload_raw = dict(raw.get("workload", {}))
        _check_keys(
            "workload",
            workload_raw,
            [
                "num_templates",
                "num_queries",
                "zipf_theta",
                "selectivity",
                "dims_per_query",
                "point_lookup_fraction",
                "categorical_fraction",
                "reorder_categorical",
                "writes",
                "drift",
            ],
        )
        writes_raw = workload_raw.pop("writes", None)
        if writes_raw is not None:
            _check_keys("workload.writes", writes_raw, ["write_fraction", "rows_per_write"])
            workload_raw["writes"] = WriteMixConfig(**writes_raw)
        drift_raw = workload_raw.pop("drift", None)
        if drift_raw is not None:
            _check_keys("workload.drift", drift_raw, ["schedule", "phases"])
            workload_raw["drift"] = DriftConfig(**drift_raw)
        workload = WorkloadConfig(**workload_raw)

        indexes = []
        for position, index_raw in enumerate(raw.get("indexes", [])):
            _check_keys(
                f"indexes[{position}]",
                index_raw,
                [
                    "kind",
                    "variant",
                    "label",
                    "optimizer_iterations",
                    "page_size",
                    "merge_threshold",
                    "merge_strategy",
                    "num_shards",
                    "parallelism",
                    "updatable_shards",
                    "cache_entries",
                ],
            )
            indexes.append(IndexConfig(**index_raw))

        faults_raw = raw.get("faults")
        faults = None
        if faults_raw is not None:
            _check_keys(
                "faults",
                faults_raw,
                ["error_probability", "delay_probability", "delay_seconds"],
            )
            faults = FaultsConfig(**faults_raw)

        thresholds_raw = raw.get("thresholds")
        thresholds = ThresholdsConfig()
        if thresholds_raw is not None:
            _check_keys(
                "thresholds",
                thresholds_raw,
                [
                    "require_correct",
                    "min_queries_per_second",
                    "speedup_of",
                    "speedup_over",
                    "min_speedup",
                    "max_bytes_per_value",
                    "max_table_bytes_per_value",
                    "min_relative_update_rate",
                ],
            )
            thresholds = ThresholdsConfig(**thresholds_raw)

        try:
            config = cls(
                name=raw.get("name", ""),
                description=raw.get("description", ""),
                smoke=bool(raw.get("smoke", False)),
                seed=int(raw.get("seed", 0)),
                repetitions=int(raw.get("repetitions", 1)),
                verify=bool(raw.get("verify", True)),
                dataset=dataset,
                workload=workload,
                indexes=tuple(indexes),
                faults=faults,
                thresholds=thresholds,
            )
        except TypeError as exc:  # wrong field type in a section constructor
            raise ConfigError(f"malformed scenario config: {exc}") from exc
        config.validate()
        return config

    def to_dict(self) -> dict:
        """The JSON form of this config (round-trips through from_dict)."""
        raw = asdict(self)
        raw["schema_version"] = SCHEMA_VERSION
        raw["kind"] = "scenario"
        raw["indexes"] = [
            {k: v for k, v in index.items() if v is not None}
            for index in raw["indexes"]
        ]
        dims = raw["dataset"]["num_dimensions"]
        if isinstance(dims, tuple):
            raw["dataset"]["num_dimensions"] = list(dims)
        return raw


# ---------------------------------------------------------------------------
# Config files: loading, discovery, and the non-scenario kinds
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrackerConfig:
    """One of the five serving perf trackers, config-driven.

    ``scales`` holds the ``smoke`` and ``full`` parameter sets handed to the
    tracker body in :mod:`repro.bench.trackers`; ``output`` is the historical
    ``BENCH_*.json`` file name the full run writes at the repo root.
    """

    name: str
    tracker: str
    description: str = ""
    smoke: bool = True
    output: str = ""
    seed: int | None = None
    params: Mapping = field(default_factory=dict)
    scales: Mapping[str, Mapping] = field(default_factory=dict)

    def validate(self) -> None:
        _require(bool(self.name), "tracker config name must be non-empty")
        _require(
            self.tracker in TRACKER_NAMES,
            f"tracker must be one of {TRACKER_NAMES}, got {self.tracker!r}",
        )
        _require(bool(self.output), "tracker config needs an output file name")
        for mode in ("smoke", "full"):
            _require(
                mode in self.scales, f"tracker config is missing scales[{mode!r}]"
            )

    @classmethod
    def from_dict(cls, raw: Mapping) -> "TrackerConfig":
        _check_keys(
            "tracker",
            raw,
            [
                "schema_version",
                "kind",
                "name",
                "tracker",
                "description",
                "smoke",
                "output",
                "seed",
                "params",
                "scales",
            ],
        )
        version = raw.get("schema_version", SCHEMA_VERSION)
        _require(
            version == SCHEMA_VERSION,
            f"unsupported schema_version {version!r} (expected {SCHEMA_VERSION})",
        )
        _require(raw.get("kind") == "tracker", "TrackerConfig requires kind 'tracker'")
        config = cls(
            name=raw.get("name", ""),
            tracker=raw.get("tracker", ""),
            description=raw.get("description", ""),
            smoke=bool(raw.get("smoke", True)),
            output=raw.get("output", ""),
            seed=raw.get("seed"),
            params=dict(raw.get("params", {})),
            scales={mode: dict(value) for mode, value in raw.get("scales", {}).items()},
        )
        config.validate()
        return config


@dataclass(frozen=True)
class FigureConfig:
    """A paper table/figure reproduced through repro.bench.experiments."""

    name: str
    experiment: str
    description: str = ""
    smoke: bool = False
    num_rows: int | None = None
    queries_per_type: int | None = None
    params: Mapping = field(default_factory=dict)

    def validate(self) -> None:
        _require(bool(self.name), "figure config name must be non-empty")
        _require(bool(self.experiment), "figure config needs an experiment name")
        # The experiment registry lives in repro.bench.cli; imported lazily to
        # avoid a cycle, and checked here so `validate` catches typos.
        from repro.bench.cli import EXPERIMENTS

        _require(
            self.experiment in EXPERIMENTS,
            f"unknown experiment {self.experiment!r}; "
            f"available: {sorted(EXPERIMENTS)}",
        )

    @classmethod
    def from_dict(cls, raw: Mapping) -> "FigureConfig":
        _check_keys(
            "figure",
            raw,
            [
                "schema_version",
                "kind",
                "name",
                "experiment",
                "description",
                "smoke",
                "num_rows",
                "queries_per_type",
                "params",
            ],
        )
        version = raw.get("schema_version", SCHEMA_VERSION)
        _require(
            version == SCHEMA_VERSION,
            f"unsupported schema_version {version!r} (expected {SCHEMA_VERSION})",
        )
        _require(raw.get("kind") == "figure", "FigureConfig requires kind 'figure'")
        config = cls(
            name=raw.get("name", ""),
            experiment=raw.get("experiment", ""),
            description=raw.get("description", ""),
            smoke=bool(raw.get("smoke", False)),
            num_rows=raw.get("num_rows"),
            queries_per_type=raw.get("queries_per_type"),
            params=dict(raw.get("params", {})),
        )
        config.validate()
        return config


AnyConfig = ScenarioConfig | TrackerConfig | FigureConfig

_PARSERS = {
    "scenario": ScenarioConfig.from_dict,
    "tracker": TrackerConfig.from_dict,
    "figure": FigureConfig.from_dict,
}


def parse_config(raw: Mapping, source: str = "<dict>") -> AnyConfig:
    """Parse one raw config mapping into its typed, validated form."""
    if not isinstance(raw, Mapping):
        raise ConfigError(f"{source}: config must be a JSON object")
    kind = raw.get("kind", "scenario")
    parser = _PARSERS.get(kind)
    if parser is None:
        raise ConfigError(
            f"{source}: unknown config kind {kind!r}; "
            f"expected one of {sorted(_PARSERS)}"
        )
    try:
        return parser(raw)
    except ConfigError as exc:
        raise ConfigError(f"{source}: {exc}") from None


def load_config(path: str | Path) -> AnyConfig:
    """Load and validate one config file."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigError(f"config file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: invalid JSON: {exc}") from None
    return parse_config(raw, source=str(path))


def discover_configs(directory: str | Path) -> list[Path]:
    """Every ``*.json`` config file under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ConfigError(f"config directory not found: {directory}")
    return sorted(directory.glob("*.json"))


def validate_directory(directory: str | Path) -> list[tuple[Path, AnyConfig]]:
    """Load and validate every config in ``directory`` (raises on the first bad one)."""
    return [(path, load_config(path)) for path in discover_configs(directory)]
