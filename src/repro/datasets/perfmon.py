"""Performance-monitoring stand-in and its query workload (§6.2).

The paper's Perfmon dataset contains a year of logs from all machines managed
by a university: log time, machine name, CPU usages, and load averages, scaled
to 236M rows.  Queries skew towards recent log times and towards high CPU
usage ("when in the last month did a certain set of machines experience high
load?").  The load averages over different windows are strongly correlated
with each other, and CPU system time is correlated with CPU user time.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import SeedLike, make_rng
from repro.datasets.workload_gen import QueryTemplate, RangeSpec
from repro.storage.table import Table

#: One year of seconds, the log-time domain.
_TIME_DOMAIN = 365 * 24 * 3600
_NUM_MACHINES = 1200


def make_perfmon_dataset(num_rows: int = 200_000, seed: SeedLike = 0) -> Table:
    """Generate a machine-log-like table with ``num_rows`` rows (7 dimensions)."""
    rng = make_rng(seed)
    log_time = rng.integers(0, _TIME_DOMAIN, num_rows)
    machine = rng.integers(0, _NUM_MACHINES, num_rows)
    # CPU usage percentages in tenths of a percent; most machines are mostly idle.
    cpu_user = np.clip(rng.gamma(2.0, 80.0, num_rows), 0, 1000).astype(np.int64)
    cpu_system = np.clip(
        cpu_user * 0.35 + rng.normal(0, 30, num_rows), 0, 1000
    ).astype(np.int64)
    # Load averages (hundredths); the 5-minute load tracks the 1-minute load.
    load_1m = np.clip(rng.gamma(1.5, 60.0, num_rows), 0, 3200).astype(np.int64)
    load_5m = np.clip(load_1m * 0.9 + rng.normal(0, 25, num_rows), 0, 3200).astype(np.int64)
    memory = np.clip(rng.normal(550, 180, num_rows), 0, 1000).astype(np.int64)
    return Table.from_arrays(
        "perfmon",
        {
            "log_time": log_time,
            "machine": machine,
            "cpu_user": cpu_user,
            "cpu_system": cpu_system,
            "load_1m": load_1m,
            "load_5m": load_5m,
            "memory": memory,
        },
    )


def perfmon_templates(queries_per_type: int = 100) -> list[QueryTemplate]:
    """The default five query types over the perfmon stand-in."""
    return [
        QueryTemplate(
            "recent_high_load_machines",
            {
                "log_time": RangeSpec(0.08, centre_region=(0.9, 1.0)),
                "machine": RangeSpec(0.10, centre_region=(0.0, 1.0)),
                "load_1m": RangeSpec(0.15, centre_region=(0.9, 1.0)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "recent_cpu_saturation",
            {
                "log_time": RangeSpec(0.10, centre_region=(0.85, 1.0)),
                "cpu_user": RangeSpec(0.10, centre_region=(0.9, 1.0)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "memory_pressure_audit",
            {
                "memory": RangeSpec(0.10, centre_region=(0.9, 1.0)),
                "load_5m": RangeSpec(0.20, centre_region=(0.75, 1.0)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "fleet_health_weekly",
            {
                "log_time": RangeSpec(0.02, centre_region=(0.5, 1.0)),
                "cpu_system": RangeSpec(0.30, centre_region=(0.0, 0.5)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "idle_machines_history",
            {
                "cpu_user": RangeSpec(0.20, centre_region=(0.0, 0.15)),
                "load_1m": RangeSpec(0.20, centre_region=(0.0, 0.15)),
                "machine": RangeSpec(0.15, centre_region=(0.0, 1.0)),
            },
            count=queries_per_type,
        ),
    ]
