"""TPC-H lineitem stand-in and its query workload (§6.2).

The paper uses the lineitem fact table at scale factor 50 (300M rows) with
filters over quantity, extended price, discount, tax, ship mode, ship date,
commit date, and receipt date.  The generator below follows the TPC-H
specification's column rules at a configurable row count:

* ``quantity`` — uniform integers 1..50.
* ``extendedprice`` — quantity × a per-part price, so it is loosely
  monotonically correlated with quantity.
* ``discount`` — 0.00..0.10 in cents; ``tax`` — 0.00..0.08.
* ``shipdate`` — uniform over a 7-year day range; ``commitdate`` and
  ``receiptdate`` are shipdate plus small offsets, i.e. tightly correlated
  with it (exactly the correlation the Augmented Grid exploits).
* ``shipmode`` — seven dictionary-encoded categories.

The default workload has five query types mirroring the paper's examples
("how many high-priced orders in the past year used a significant discount?",
"how many shipments by air had below ten items?"), with skew towards recent
ship dates.
"""

from __future__ import annotations


from repro.common.rng import SeedLike, make_rng
from repro.datasets.workload_gen import EqualitySpec, QueryTemplate, RangeSpec
from repro.storage.table import Table

#: Number of distinct days in the shipdate domain (7 years, as in TPC-H).
_NUM_DAYS = 2557
_SHIP_MODES = 7


def make_tpch_dataset(num_rows: int = 200_000, seed: SeedLike = 0) -> Table:
    """Generate a lineitem-like table with ``num_rows`` rows."""
    rng = make_rng(seed)
    quantity = rng.integers(1, 51, num_rows)
    # retailprice in TPC-H is roughly 900..100000 cents depending on the part.
    part_price = rng.integers(900, 100_001, num_rows)
    extendedprice = quantity * part_price
    discount = rng.integers(0, 11, num_rows)  # percent
    tax = rng.integers(0, 9, num_rows)  # percent
    shipdate = rng.integers(0, _NUM_DAYS, num_rows)
    commitdate = shipdate + rng.integers(-60, 61, num_rows)
    receiptdate = shipdate + rng.integers(1, 31, num_rows)
    shipmode = rng.integers(0, _SHIP_MODES, num_rows)
    return Table.from_arrays(
        "tpch_lineitem",
        {
            "quantity": quantity,
            "extendedprice": extendedprice,
            "discount": discount,
            "tax": tax,
            "shipdate": shipdate,
            "commitdate": commitdate,
            "receiptdate": receiptdate,
            "shipmode": shipmode,
        },
    )


def tpch_templates(queries_per_type: int = 100) -> list[QueryTemplate]:
    """The default five query types over the TPC-H stand-in."""
    return [
        QueryTemplate(
            "high_price_recent_discounted",
            {
                "extendedprice": RangeSpec(0.20, centre_region=(0.85, 1.0)),
                "shipdate": RangeSpec(0.15, centre_region=(0.85, 1.0)),
                "discount": RangeSpec(0.30, centre_region=(0.7, 1.0)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "air_shipments_small_orders",
            {
                "shipmode": EqualitySpec(centre_region=(0.0, 1.0)),
                "quantity": RangeSpec(0.18, centre_region=(0.0, 0.2)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "recent_receipts_low_tax",
            {
                "receiptdate": RangeSpec(0.05, centre_region=(0.9, 1.0)),
                "tax": RangeSpec(0.25, centre_region=(0.0, 0.25)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "committed_vs_shipped_window",
            {
                "commitdate": RangeSpec(0.08, centre_region=(0.3, 0.9)),
                "quantity": RangeSpec(0.25, centre_region=(0.5, 1.0)),
                "discount": RangeSpec(0.35, centre_region=(0.0, 0.4)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "bulk_orders_all_time",
            {
                "quantity": RangeSpec(0.10, centre_region=(0.9, 1.0)),
                "extendedprice": RangeSpec(0.25, centre_region=(0.6, 1.0)),
            },
            count=queries_per_type,
        ),
    ]


def tpch_shifted_templates(queries_per_type: int = 100) -> list[QueryTemplate]:
    """Five *new* query types used for the Fig. 9a workload-shift experiment."""
    return [
        QueryTemplate(
            "stale_cheap_orders",
            {
                "shipdate": RangeSpec(0.20, centre_region=(0.0, 0.3)),
                "extendedprice": RangeSpec(0.20, centre_region=(0.0, 0.3)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "high_tax_audit",
            {
                "tax": RangeSpec(0.20, centre_region=(0.8, 1.0)),
                "commitdate": RangeSpec(0.10, centre_region=(0.0, 0.5)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "mode_deep_dive",
            {
                "shipmode": EqualitySpec(centre_region=(0.0, 0.5)),
                "receiptdate": RangeSpec(0.12, centre_region=(0.2, 0.6)),
                "discount": RangeSpec(0.30, centre_region=(0.5, 1.0)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "mid_quantity_mid_price",
            {
                "quantity": RangeSpec(0.20, centre_region=(0.4, 0.6)),
                "extendedprice": RangeSpec(0.15, centre_region=(0.4, 0.6)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "early_receipts",
            {
                "receiptdate": RangeSpec(0.06, centre_region=(0.0, 0.15)),
                "quantity": RangeSpec(0.30, centre_region=(0.0, 0.5)),
            },
            count=queries_per_type,
        ),
    ]
