"""Registry of the four evaluation datasets and their default workloads.

``load_dataset("taxi", num_rows=100_000)`` returns a ``(table, workload)``
pair ready to be handed to any index's ``build`` method, which is how the
examples and benchmarks obtain their inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.common.rng import SeedLike
from repro.datasets.perfmon import make_perfmon_dataset, perfmon_templates
from repro.datasets.stocks import make_stocks_dataset, stocks_templates
from repro.datasets.taxi import make_taxi_dataset, taxi_templates
from repro.datasets.tpch import make_tpch_dataset, tpch_templates
from repro.datasets.workload_gen import QueryTemplate, generate_workload
from repro.query.workload import Workload
from repro.storage.table import Table


@dataclass(frozen=True)
class DatasetSpec:
    """A dataset generator paired with its default workload templates."""

    name: str
    make_table: Callable[..., Table]
    make_templates: Callable[..., Sequence[QueryTemplate]]
    paper_rows: int
    paper_query_types: int
    paper_dimensions: int


DATASETS: dict[str, DatasetSpec] = {
    "tpch": DatasetSpec(
        name="tpch",
        make_table=make_tpch_dataset,
        make_templates=tpch_templates,
        paper_rows=300_000_000,
        paper_query_types=5,
        paper_dimensions=8,
    ),
    "taxi": DatasetSpec(
        name="taxi",
        make_table=make_taxi_dataset,
        make_templates=taxi_templates,
        paper_rows=184_000_000,
        paper_query_types=6,
        paper_dimensions=9,
    ),
    "perfmon": DatasetSpec(
        name="perfmon",
        make_table=make_perfmon_dataset,
        make_templates=perfmon_templates,
        paper_rows=236_000_000,
        paper_query_types=5,
        paper_dimensions=7,
    ),
    "stocks": DatasetSpec(
        name="stocks",
        make_table=make_stocks_dataset,
        make_templates=stocks_templates,
        paper_rows=210_000_000,
        paper_query_types=5,
        paper_dimensions=7,
    ),
}


def load_dataset(
    name: str,
    num_rows: int = 100_000,
    queries_per_type: int = 100,
    seed: SeedLike = 0,
    workload_seed: SeedLike = 1,
) -> tuple[Table, Workload]:
    """Generate one of the four evaluation datasets together with its workload."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    table = spec.make_table(num_rows=num_rows, seed=seed)
    templates = spec.make_templates(queries_per_type=queries_per_type)
    workload = generate_workload(
        table, templates, seed=workload_seed, name=f"{name}_workload"
    )
    return table, workload
