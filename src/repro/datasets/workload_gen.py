"""Template-driven workload generation.

§6.2 describes every evaluation workload the same way: a handful of query
*types* (templates), 100 queries per type, each type filtering a fixed set of
dimensions with characteristic selectivities, and the placement of filters
skewed over parts of the data space (recent dates, high CPU usage, very low or
very high passenger counts, ...).

A :class:`QueryTemplate` captures one type: for every filtered dimension it
holds either a :class:`RangeSpec` (a range filter with a target per-dimension
selectivity whose centre is drawn from a region of the column's quantile
space) or an :class:`EqualitySpec` (an equality filter over a value drawn from
a quantile region).  :func:`generate_workload` instantiates the templates
against a concrete table, which keeps the workloads meaningful at any dataset
scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.common.rng import SeedLike, make_rng
from repro.query.query import Query
from repro.query.workload import Workload
from repro.storage.table import Table


@dataclass(frozen=True)
class RangeSpec:
    """A range filter with per-dimension selectivity ``selectivity``.

    The filter's centre is placed at a quantile drawn uniformly from
    ``centre_region`` (a sub-interval of ``[0, 1]`` of the column's quantile
    space), which is how workload skew is expressed: e.g.
    ``centre_region=(0.8, 1.0)`` concentrates queries on the most recent 20%
    of a time column.
    """

    selectivity: float
    centre_region: tuple[float, float] = (0.0, 1.0)

    def __post_init__(self) -> None:
        if not 0.0 < self.selectivity <= 1.0:
            raise ValueError(f"selectivity must be in (0, 1], got {self.selectivity}")
        low, high = self.centre_region
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError(f"centre_region must be within [0, 1], got {self.centre_region}")


@dataclass(frozen=True)
class EqualitySpec:
    """An equality filter over a value drawn from a quantile region of the column."""

    centre_region: tuple[float, float] = (0.0, 1.0)

    def __post_init__(self) -> None:
        low, high = self.centre_region
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError(f"centre_region must be within [0, 1], got {self.centre_region}")


FilterSpec = RangeSpec | EqualitySpec


@dataclass(frozen=True)
class QueryTemplate:
    """One query type: which dimensions it filters and how."""

    name: str
    filters: Mapping[str, FilterSpec]
    count: int = 100

    def __post_init__(self) -> None:
        if not self.filters:
            raise ValueError(f"template {self.name!r} must filter at least one dimension")
        if self.count < 1:
            raise ValueError(f"template {self.name!r} must generate at least one query")


def _column_quantiles(table: Table, dimension: str, probabilities: np.ndarray) -> np.ndarray:
    values = table.values(dimension)
    return np.quantile(values, probabilities, method="lower")


def _instantiate_range(
    table: Table, dimension: str, spec: RangeSpec, rng: np.random.Generator
) -> tuple[int, int]:
    """Pick concrete bounds achieving roughly ``spec.selectivity`` over the dimension."""
    centre_quantile = rng.uniform(*spec.centre_region)
    half_width = spec.selectivity / 2.0
    low_q = float(np.clip(centre_quantile - half_width, 0.0, 1.0 - spec.selectivity))
    high_q = float(np.clip(low_q + spec.selectivity, 0.0, 1.0))
    low, high = _column_quantiles(table, dimension, np.array([low_q, high_q]))
    return int(low), int(max(high, low))


def _instantiate_equality(
    table: Table, dimension: str, spec: EqualitySpec, rng: np.random.Generator
) -> tuple[int, int]:
    quantile = rng.uniform(*spec.centre_region)
    value = int(_column_quantiles(table, dimension, np.array([quantile]))[0])
    return value, value


def generate_workload(
    table: Table,
    templates: Sequence[QueryTemplate],
    seed: SeedLike = None,
    name: str = "workload",
    aggregate: str = "count",
    aggregate_column: str | None = None,
) -> Workload:
    """Instantiate ``templates`` against ``table`` into a typed workload."""
    rng = make_rng(seed)
    queries: list[Query] = []
    for type_id, template in enumerate(templates):
        for _ in range(template.count):
            ranges: dict[str, tuple[int, int]] = {}
            for dimension, spec in template.filters.items():
                if dimension not in table:
                    raise ValueError(
                        f"template {template.name!r} filters unknown dimension "
                        f"{dimension!r}"
                    )
                if isinstance(spec, RangeSpec):
                    ranges[dimension] = _instantiate_range(table, dimension, spec, rng)
                else:
                    ranges[dimension] = _instantiate_equality(table, dimension, spec, rng)
            queries.append(
                Query.from_ranges(
                    ranges,
                    aggregate=aggregate,
                    aggregate_column=aggregate_column,
                    query_type=type_id,
                )
            )
    return Workload(queries, name=name)


def scale_template_selectivities(
    templates: Sequence[QueryTemplate], factor: float
) -> list[QueryTemplate]:
    """Scale every range filter's per-dimension selectivity by ``factor``.

    Used by the Fig. 11b selectivity sweep: filter ranges are scaled up and
    down equally in every dimension.
    """
    scaled = []
    for template in templates:
        filters: dict[str, FilterSpec] = {}
        for dimension, spec in template.filters.items():
            if isinstance(spec, RangeSpec):
                filters[dimension] = RangeSpec(
                    selectivity=float(np.clip(spec.selectivity * factor, 1e-6, 1.0)),
                    centre_region=spec.centre_region,
                )
            else:
                filters[dimension] = spec
        scaled.append(QueryTemplate(template.name, filters, count=template.count))
    return scaled
