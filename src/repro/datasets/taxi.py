"""NYC yellow-taxi stand-in and its query workload (§6.2).

The paper's Taxi dataset (184M records of 2018–2019 trips) has pick-up and
drop-off times, locations, trip distance, itemized fares, and passenger
counts.  The documented correlations the index exploits are between pick-up
and drop-off time (drop-off = pick-up + duration) and between trip distance
and fare.  Queries display skew over time (recent data queried more), over
passenger count (distinct query types about very low and very high counts),
and over trip distance (short trips queried more).  Query selectivities range
from 0.25% to 3.9% per query; our template selectivities are per-dimension and
combine multiplicatively to land in a comparable range.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import SeedLike, make_rng
from repro.datasets.workload_gen import EqualitySpec, QueryTemplate, RangeSpec
from repro.storage.table import Table

#: Two years of seconds (2018–2019), the pick-up time domain.
_TIME_DOMAIN = 2 * 365 * 24 * 3600
_NUM_ZONES = 265


def make_taxi_dataset(num_rows: int = 200_000, seed: SeedLike = 0) -> Table:
    """Generate a taxi-trip-like table with ``num_rows`` rows (9 dimensions)."""
    rng = make_rng(seed)
    pickup_time = rng.integers(0, _TIME_DOMAIN, num_rows)
    duration = (rng.exponential(12 * 60, num_rows) + 120).astype(np.int64)
    dropoff_time = pickup_time + duration
    # Trip distance in units of 0.01 miles, heavy-tailed towards short trips.
    trip_distance = (rng.exponential(250, num_rows) + 30).astype(np.int64)
    # Fare is tightly (but not perfectly) correlated with distance: base fare
    # plus a per-distance rate plus noise, in cents.
    fare = (
        250
        + (trip_distance * 2.5).astype(np.int64)
        + rng.integers(0, 200, num_rows)
    )
    tip = (fare * rng.uniform(0.0, 0.3, num_rows)).astype(np.int64)
    total = fare + tip
    passenger_count = rng.choice(
        np.arange(1, 7), size=num_rows, p=[0.72, 0.14, 0.05, 0.03, 0.04, 0.02]
    )
    pickup_zone = rng.integers(1, _NUM_ZONES + 1, num_rows)
    dropoff_zone = rng.integers(1, _NUM_ZONES + 1, num_rows)
    return Table.from_arrays(
        "taxi",
        {
            "pickup_time": pickup_time,
            "dropoff_time": dropoff_time,
            "trip_distance": trip_distance,
            "fare": fare,
            "tip": tip,
            "total": total,
            "passenger_count": passenger_count,
            "pickup_zone": pickup_zone,
            "dropoff_zone": dropoff_zone,
        },
    )


def taxi_templates(queries_per_type: int = 100) -> list[QueryTemplate]:
    """The default six query types over the taxi stand-in."""
    return [
        QueryTemplate(
            "single_passenger_manhattan",
            {
                "passenger_count": EqualitySpec(centre_region=(0.0, 0.1)),
                "pickup_zone": RangeSpec(0.15, centre_region=(0.3, 0.6)),
                "dropoff_zone": RangeSpec(0.15, centre_region=(0.3, 0.6)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "recent_short_trips",
            {
                "pickup_time": RangeSpec(0.08, centre_region=(0.85, 1.0)),
                "trip_distance": RangeSpec(0.20, centre_region=(0.0, 0.2)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "recent_expensive_trips",
            {
                "pickup_time": RangeSpec(0.10, centre_region=(0.8, 1.0)),
                "fare": RangeSpec(0.12, centre_region=(0.85, 1.0)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "large_groups_all_time",
            {
                "passenger_count": RangeSpec(0.10, centre_region=(0.9, 1.0)),
                "total": RangeSpec(0.25, centre_region=(0.5, 1.0)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "monthly_dropoff_report",
            {
                "dropoff_time": RangeSpec(0.04, centre_region=(0.75, 1.0)),
                "dropoff_zone": RangeSpec(0.25, centre_region=(0.0, 1.0)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "generous_tippers",
            {
                "tip": RangeSpec(0.10, centre_region=(0.9, 1.0)),
                "trip_distance": RangeSpec(0.25, centre_region=(0.0, 0.5)),
                "pickup_time": RangeSpec(0.30, centre_region=(0.6, 1.0)),
            },
            count=queries_per_type,
        ),
    ]
