"""Dataset and workload generators standing in for the paper's evaluation data.

The paper evaluates on three real datasets (NYC Taxi, a university performance
monitoring log, daily stock prices) plus TPC-H lineitem, each with a
synthesized workload of several query *types* that display skew over time and
other dimensions (§6.2).  The real datasets are not redistributable, so this
subpackage generates synthetic stand-ins that reproduce the documented
schemas, correlations, and workload skew at configurable scale — the
statistics the index structures actually respond to (see DESIGN.md §2).

``load_dataset(name, ...)`` is the registry entry point used by the examples
and benchmarks.
"""

from repro.datasets.synthetic import (
    make_uniform_dataset,
    make_correlated_dataset,
    synthetic_templates,
    synthetic_scaling_workload,
)
from repro.datasets.workload_gen import (
    RangeSpec,
    EqualitySpec,
    QueryTemplate,
    generate_workload,
)
from repro.datasets.tpch import make_tpch_dataset, tpch_templates, tpch_shifted_templates
from repro.datasets.taxi import make_taxi_dataset, taxi_templates
from repro.datasets.perfmon import make_perfmon_dataset, perfmon_templates
from repro.datasets.stocks import make_stocks_dataset, stocks_templates
from repro.datasets.registry import DATASETS, load_dataset

__all__ = [
    "make_uniform_dataset",
    "make_correlated_dataset",
    "synthetic_templates",
    "synthetic_scaling_workload",
    "RangeSpec",
    "EqualitySpec",
    "QueryTemplate",
    "generate_workload",
    "make_tpch_dataset",
    "tpch_templates",
    "tpch_shifted_templates",
    "make_taxi_dataset",
    "taxi_templates",
    "make_perfmon_dataset",
    "perfmon_templates",
    "make_stocks_dataset",
    "stocks_templates",
    "DATASETS",
    "load_dataset",
]
