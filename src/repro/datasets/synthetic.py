"""Synthetic datasets and workloads for the scalability experiments (§6.5).

Two dataset families are used by Fig. 10 and Fig. 11b:

* *Uncorrelated*: every dimension is sampled i.i.d. uniform.
* *Correlated*: half of the dimensions are uniform; each dimension in the
  other half is linearly correlated with one of the uniform dimensions, either
  strongly (±1% error) or loosely (±10% error), alternating.

The accompanying workload has four query types.  Earlier dimensions are
filtered with exponentially higher selectivity (i.e. more restrictive filters)
than later dimensions, and queries are skewed over the first four dimensions.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import SeedLike, make_rng
from repro.datasets.workload_gen import QueryTemplate, RangeSpec, generate_workload
from repro.query.workload import Workload
from repro.storage.table import Table

#: Domain of every synthetic dimension.
_DOMAIN = 1_000_000


def _dimension_names(num_dimensions: int) -> list[str]:
    return [f"d{i}" for i in range(num_dimensions)]


def make_uniform_dataset(
    num_rows: int = 100_000, num_dimensions: int = 8, seed: SeedLike = 0
) -> Table:
    """A dataset whose dimensions are all i.i.d. uniform (no correlation)."""
    rng = make_rng(seed)
    columns = {
        name: rng.integers(0, _DOMAIN, num_rows)
        for name in _dimension_names(num_dimensions)
    }
    return Table.from_arrays(f"uniform_{num_dimensions}d", columns)


def make_correlated_dataset(
    num_rows: int = 100_000,
    num_dimensions: int = 8,
    strong_error: float = 0.01,
    loose_error: float = 0.10,
    seed: SeedLike = 0,
) -> Table:
    """A dataset where half of the dimensions are linearly correlated to the other half.

    Dimension ``d{i + d/2}`` is a noisy linear function of dimension ``d{i}``:
    the noise amplitude alternates between ``strong_error`` (±1% of the
    domain by default) and ``loose_error`` (±10%).
    """
    if num_dimensions < 2:
        raise ValueError("a correlated dataset needs at least two dimensions")
    rng = make_rng(seed)
    names = _dimension_names(num_dimensions)
    half = num_dimensions // 2
    columns: dict[str, np.ndarray] = {}
    for i in range(half):
        columns[names[i]] = rng.integers(0, _DOMAIN, num_rows)
    for i in range(half, num_dimensions):
        base = columns[names[i - half]]
        error = strong_error if (i - half) % 2 == 0 else loose_error
        noise = rng.integers(
            -int(error * _DOMAIN), int(error * _DOMAIN) + 1, num_rows
        )
        columns[names[i]] = np.clip(base + noise, 0, 2 * _DOMAIN)
    return Table.from_arrays(f"correlated_{num_dimensions}d", columns)


def synthetic_templates(
    num_dimensions: int,
    num_query_types: int = 4,
    queries_per_type: int = 100,
    base_selectivity: float = 0.05,
    selectivity_growth: float = 2.0,
    num_filtered_dimensions: int | None = None,
    skewed_dimensions: int = 4,
) -> list[QueryTemplate]:
    """Query templates for the synthetic datasets (§6.5).

    Dimension ``d{j}`` receives a per-dimension selectivity of
    ``base_selectivity * selectivity_growth ** j`` (capped at 1.0), so earlier
    dimensions carry exponentially more selective filters.  The first
    ``skewed_dimensions`` dimensions have their filter centres restricted to a
    per-type region of the quantile space, which is what makes the workload
    skewed.
    """
    names = _dimension_names(num_dimensions)
    filtered = num_filtered_dimensions or min(4, num_dimensions)
    templates = []
    for type_id in range(num_query_types):
        # Each type concentrates on a different slice of the skewed dimensions.
        region_width = 0.25
        region_start = (type_id / max(num_query_types, 1)) * (1.0 - region_width)
        # Later types look at more recent parts of the space, mimicking the
        # real workloads' recency skew.
        region = (min(0.95, region_start + 0.5), 1.0) if type_id % 2 else (
            region_start,
            region_start + region_width,
        )
        filters: dict[str, RangeSpec] = {}
        for j in range(filtered):
            selectivity = min(1.0, base_selectivity * selectivity_growth**j)
            centre = region if j < skewed_dimensions else (0.0, 1.0)
            filters[names[j]] = RangeSpec(selectivity, centre_region=centre)
        templates.append(
            QueryTemplate(f"type_{type_id}", filters, count=queries_per_type)
        )
    return templates


def synthetic_scaling_workload(
    table: Table,
    num_query_types: int = 4,
    queries_per_type: int = 100,
    base_selectivity: float = 0.05,
    seed: SeedLike = 0,
) -> Workload:
    """The four-type skewed workload used by the dimensionality/selectivity sweeps."""
    templates = synthetic_templates(
        num_dimensions=table.num_dimensions,
        num_query_types=num_query_types,
        queries_per_type=queries_per_type,
        base_selectivity=base_selectivity,
    )
    return generate_workload(table, templates, seed=seed, name=f"{table.name}_workload")
