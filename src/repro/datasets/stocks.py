"""Daily stock-price stand-in and its query workload (§6.2).

The paper's Stocks dataset has daily prices (open, close, adjusted close, low,
high), trading volume, and the date for ~6000 stocks from 1970 to 2018, scaled
to 210M rows.  The four intra-day price columns are tightly monotonically
correlated with each other (exactly the kind of correlation a functional
mapping captures), and queries skew towards recent dates and towards very low
or very high volume.  Query selectivity in the paper is tightly concentrated
around 0.5%.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import SeedLike, make_rng
from repro.datasets.workload_gen import QueryTemplate, RangeSpec
from repro.storage.table import Table

#: Number of distinct trading days (1970–2018).
_NUM_DAYS = 12_300


def make_stocks_dataset(num_rows: int = 200_000, seed: SeedLike = 0) -> Table:
    """Generate a daily-price-like table with ``num_rows`` rows (7 dimensions)."""
    rng = make_rng(seed)
    date = rng.integers(0, _NUM_DAYS, num_rows)
    # Open price in cents, log-normal across stocks and days.
    open_price = np.clip(rng.lognormal(3.3, 0.9, num_rows) * 100, 50, 500_000).astype(np.int64)
    daily_move = rng.normal(0.0, 0.02, num_rows)
    close_price = np.clip(open_price * (1.0 + daily_move), 50, None).astype(np.int64)
    low_price = np.minimum(open_price, close_price) - (
        np.abs(rng.normal(0.0, 0.01, num_rows)) * open_price
    ).astype(np.int64)
    high_price = np.maximum(open_price, close_price) + (
        np.abs(rng.normal(0.0, 0.01, num_rows)) * open_price
    ).astype(np.int64)
    adj_close = np.clip(close_price * rng.uniform(0.85, 1.0, num_rows), 10, None).astype(np.int64)
    volume = np.clip(rng.lognormal(11.0, 1.6, num_rows), 100, None).astype(np.int64)
    return Table.from_arrays(
        "stocks",
        {
            "date": date,
            "open": open_price,
            "close": close_price,
            "low": low_price,
            "high": high_price,
            "adj_close": adj_close,
            "volume": volume,
        },
    )


def stocks_templates(queries_per_type: int = 100) -> list[QueryTemplate]:
    """The default five query types over the stocks stand-in."""
    return [
        QueryTemplate(
            "low_intraday_change_high_volume",
            {
                "low": RangeSpec(0.10, centre_region=(0.3, 0.8)),
                "high": RangeSpec(0.10, centre_region=(0.3, 0.8)),
                "volume": RangeSpec(0.10, centre_region=(0.9, 1.0)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "recent_year_price_band",
            {
                "date": RangeSpec(0.05, centre_region=(0.85, 1.0)),
                "close": RangeSpec(0.12, centre_region=(0.2, 0.9)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "penny_stock_screens",
            {
                "open": RangeSpec(0.08, centre_region=(0.0, 0.1)),
                "volume": RangeSpec(0.12, centre_region=(0.0, 0.1)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "recent_high_volume_moves",
            {
                "date": RangeSpec(0.06, centre_region=(0.9, 1.0)),
                "volume": RangeSpec(0.10, centre_region=(0.9, 1.0)),
                "adj_close": RangeSpec(0.20, centre_region=(0.3, 1.0)),
            },
            count=queries_per_type,
        ),
        QueryTemplate(
            "decade_span_closing_range",
            {
                "date": RangeSpec(0.20, centre_region=(0.5, 0.9)),
                "close": RangeSpec(0.05, centre_region=(0.4, 0.7)),
            },
            count=queries_per_type,
        ),
    ]
