"""Filter predicates over single dimensions.

A query's WHERE clause is a conjunction of per-dimension predicates.  Two
kinds appear in the paper's workloads: inclusive range predicates
(``a <= X <= b``) and equality predicates (``X = v``), the latter being a
degenerate range.  Predicates operate on the storage domain (64-bit integers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import QueryError


@dataclass(frozen=True)
class Predicate:
    """Base class for a single-dimension filter predicate."""

    dimension: str

    @property
    def low(self) -> int:
        """Inclusive lower bound in storage units."""
        raise NotImplementedError

    @property
    def high(self) -> int:
        """Inclusive upper bound in storage units."""
        raise NotImplementedError

    @property
    def bounds(self) -> tuple[int, int]:
        """``(low, high)`` inclusive bounds."""
        return (self.low, self.high)

    def matches(self, values: np.ndarray) -> np.ndarray:
        """Vectorized membership test against stored values."""
        return (values >= self.low) & (values <= self.high)

    def width(self) -> int:
        """Number of integer values covered by the predicate."""
        return self.high - self.low + 1


@dataclass(frozen=True)
class RangePredicate(Predicate):
    """Inclusive range filter ``low <= dimension <= high``."""

    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise QueryError(
                f"range predicate on {self.dimension!r} has lower {self.lower} "
                f"> upper {self.upper}"
            )

    @property
    def low(self) -> int:
        return int(self.lower)

    @property
    def high(self) -> int:
        return int(self.upper)


@dataclass(frozen=True)
class EqualityPredicate(Predicate):
    """Equality filter ``dimension == value`` (a width-one range)."""

    value: int

    @property
    def low(self) -> int:
        return int(self.value)

    @property
    def high(self) -> int:
        return int(self.value)
