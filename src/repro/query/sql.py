"""A small SQL front-end for the queries the paper targets (§2).

Tsunami accelerates analytics queries of the form::

    SELECT SUM(R.X) FROM MyTable
    WHERE (a <= R.Y <= b) AND (c <= R.Z <= d)

This module parses exactly that family of statements — a single aggregation
over one table with a conjunction of per-dimension range or equality
predicates — into a :class:`~repro.query.query.Query`, so the examples and
downstream users can talk to an index in SQL instead of constructing
predicates by hand.

Supported grammar (case-insensitive keywords)::

    SELECT COUNT(*) | COUNT(col) | SUM(col) | AVG(col) | MIN(col) | MAX(col)
    FROM <table-name>
    [WHERE <condition> [AND <condition>]*]

    condition := col BETWEEN v AND v
               | col =  v  | col == v
               | col <  v  | col <= v
               | col >  v  | col >= v

Values may be integers, floats, or single-quoted strings; they are converted
to the storage domain through the table's column encodings.  Multiple
conditions over the same column are intersected.  Anything outside this
grammar (joins, OR, GROUP BY, ...) raises :class:`~repro.common.errors.QueryError`,
because the index cannot accelerate it anyway.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.common.errors import QueryError
from repro.query.query import AGGREGATES, Query
from repro.storage.table import Table

_SELECT_RE = re.compile(
    r"^\s*SELECT\s+(?P<agg>\w+)\s*\(\s*(?P<column>\*|[\w.]+)\s*\)\s+"
    r"FROM\s+(?P<table>[\w.]+)\s*(?:WHERE\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_BETWEEN_RE = re.compile(
    r"^(?P<column>[\w.]+)\s+BETWEEN\s+(?P<low>\S+)\s+AND\s+(?P<high>\S+)$",
    re.IGNORECASE,
)

_COMPARISON_RE = re.compile(
    r"^(?P<column>[\w.]+)\s*(?P<op>==|=|<=|>=|<|>)\s*(?P<value>.+)$"
)


@dataclass(frozen=True)
class ParsedStatement:
    """The pieces of a parsed SELECT statement, before predicate conversion."""

    aggregate: str
    aggregate_column: str | None
    table_name: str
    conditions: tuple[tuple[str, str, str], ...]  # (column, operator, raw value)


def _strip_qualifier(name: str) -> str:
    """Drop a leading table qualifier (``R.price`` -> ``price``)."""
    return name.split(".")[-1]


def _parse_value(raw: str) -> object:
    """Turn a SQL literal into a Python value (int, float, or string)."""
    text = raw.strip().rstrip(";").strip()
    if not text:
        raise QueryError("empty literal in WHERE clause")
    if (text[0] == text[-1] == "'") or (text[0] == text[-1] == '"'):
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise QueryError(f"cannot interpret literal {raw!r}") from None


def _split_conjunction(where: str) -> list[str]:
    """Split a WHERE clause on top-level ANDs, respecting BETWEEN ... AND ...."""
    tokens = re.split(r"\s+(AND)\s+", where.strip(), flags=re.IGNORECASE)
    parts: list[str] = []
    current = ""
    pending_between = False
    for token in tokens:
        if token.upper() == "AND":
            if pending_between:
                current += " AND "
                pending_between = False
            else:
                parts.append(current)
                current = ""
            continue
        current += token
        if re.search(r"\bBETWEEN\b", token, flags=re.IGNORECASE):
            pending_between = True
    if current.strip():
        parts.append(current)
    return [part.strip().strip("()").strip() for part in parts if part.strip()]


def parse_statement(sql: str) -> ParsedStatement:
    """Parse a SELECT statement into its structural pieces (no table needed)."""
    match = _SELECT_RE.match(sql)
    if match is None:
        raise QueryError(
            "statement is not of the supported form "
            "'SELECT <agg>(<col>) FROM <table> [WHERE ...]'"
        )
    aggregate = match.group("agg").lower()
    if aggregate not in AGGREGATES:
        raise QueryError(
            f"unsupported aggregate {match.group('agg')!r}; expected one of {AGGREGATES}"
        )
    column = match.group("column")
    if column == "*":
        if aggregate != "count":
            raise QueryError(f"{aggregate.upper()}(*) is not valid SQL; name a column")
        aggregate_column = None
    else:
        aggregate_column = _strip_qualifier(column)

    conditions: list[tuple[str, str, str]] = []
    where = match.group("where")
    if where:
        for clause in _split_conjunction(where):
            between = _BETWEEN_RE.match(clause)
            if between is not None:
                conditions.append(
                    (_strip_qualifier(between.group("column")), "between_low", between.group("low"))
                )
                conditions.append(
                    (_strip_qualifier(between.group("column")), "between_high", between.group("high"))
                )
                continue
            comparison = _COMPARISON_RE.match(clause)
            if comparison is None:
                raise QueryError(f"cannot parse WHERE condition {clause!r}")
            conditions.append(
                (
                    _strip_qualifier(comparison.group("column")),
                    comparison.group("op"),
                    comparison.group("value"),
                )
            )
    return ParsedStatement(
        aggregate=aggregate,
        aggregate_column=aggregate_column,
        table_name=match.group("table"),
        conditions=tuple(conditions),
    )


def _bounds_from_conditions(
    table: Table, conditions: tuple[tuple[str, str, str], ...]
) -> dict[str, tuple[int, int]]:
    """Intersect parsed conditions into per-column inclusive storage bounds.

    Sides not constrained by any condition default to the column's data
    bounds.  Conditions that contradict *each other* raise; a condition that
    merely falls outside the data's domain (e.g. an equality on a value that
    does not occur) yields a valid range that simply matches no rows.
    """
    lows: dict[str, int] = {}
    highs: dict[str, int] = {}
    for name, operator, raw in conditions:
        if name not in table:
            raise QueryError(
                f"column {name!r} does not exist in table {table.name!r}; "
                f"available: {table.column_names}"
            )
        column = table.column(name)
        value = column.to_storage(_parse_value(raw))
        if operator in {"=", "=="}:
            lows[name] = max(lows.get(name, value), value)
            highs[name] = min(highs.get(name, value), value)
        elif operator in {"<=", "between_high"}:
            highs[name] = min(highs.get(name, value), value)
        elif operator == "<":
            highs[name] = min(highs.get(name, value - 1), value - 1)
        elif operator in {">=", "between_low"}:
            lows[name] = max(lows.get(name, value), value)
        elif operator == ">":
            lows[name] = max(lows.get(name, value + 1), value + 1)
        else:  # pragma: no cover - the regex only admits the operators above
            raise QueryError(f"unsupported operator {operator!r}")
        if name in lows and name in highs and lows[name] > highs[name]:
            raise QueryError(
                f"conditions over column {name!r} are contradictory "
                f"(empty range [{lows[name]}, {highs[name]}])"
            )

    bounds: dict[str, tuple[int, int]] = {}
    for name in set(lows) | set(highs):
        table_low, table_high = table.bounds(name)
        low = lows.get(name, table_low)
        high = highs.get(name, table_high)
        if high < low:
            # The condition lies entirely outside the data's domain; keep the
            # predicate well-formed so the query simply matches nothing.
            high = low if name in lows else high
            low = high if name not in lows else low
        bounds[name] = (low, high)
    return bounds


def parse_query(sql: str, table: Table) -> Query:
    """Parse ``sql`` against ``table`` into an executable :class:`Query`."""
    statement = parse_statement(sql)
    if statement.aggregate_column is not None and statement.aggregate_column not in table:
        raise QueryError(
            f"aggregate column {statement.aggregate_column!r} does not exist in "
            f"table {table.name!r}"
        )
    bounds = _bounds_from_conditions(table, statement.conditions)
    aggregate_column = statement.aggregate_column
    if statement.aggregate == "count":
        aggregate_column = None
    return Query.from_ranges(
        bounds, aggregate=statement.aggregate, aggregate_column=aggregate_column
    )


def execute_sql(sql: str, index) -> float:
    """Parse ``sql`` and execute it through a built index.

    ``index`` is any object exposing the clustered-index surface
    (``table`` property and ``execute(query)``), e.g.
    :class:`~repro.core.tsunami.TsunamiIndex` or any baseline.
    """
    query = parse_query(sql, index.table)
    return index.execute(query).value
