"""Query model: predicates, aggregations, queries, and workloads.

Queries in the paper are conjunctive range/equality filters over a subset of
dimensions combined with a single aggregation (§2).  This subpackage defines
the in-memory representation used throughout the library, plus the
:class:`~repro.query.workload.Workload` container that generators produce and
indexes optimize against.
"""

from repro.query.predicates import Predicate, RangePredicate, EqualityPredicate
from repro.query.query import Query, AGGREGATES
from repro.query.workload import Workload, WorkloadStatistics
from repro.query.selectivity import query_selectivity, selectivity_vector
from repro.query.engine import execute_full_scan
from repro.query.sql import parse_query, parse_statement, execute_sql
from repro.query.profile import WorkloadProfile, DimensionProfile, profile_workload

__all__ = [
    "Predicate",
    "RangePredicate",
    "EqualityPredicate",
    "Query",
    "AGGREGATES",
    "Workload",
    "WorkloadStatistics",
    "query_selectivity",
    "selectivity_vector",
    "execute_full_scan",
    "parse_query",
    "parse_statement",
    "execute_sql",
    "WorkloadProfile",
    "DimensionProfile",
    "profile_workload",
]
