"""Query workloads: ordered collections of queries with summary statistics.

The paper optimizes every learned index against a *sample query workload*
(§3, §5.3) and evaluates on workloads composed of several query types, each
with 100 queries (§6.2).  :class:`Workload` is the container used for both
roles, and :class:`WorkloadStatistics` summarizes the characteristics the
paper reports in Table 3 (number of query types, selectivity range/average).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.common.rng import SeedLike, make_rng
from repro.query.query import Query
from repro.query.selectivity import query_selectivity
from repro.storage.table import Table


@dataclass(frozen=True)
class WorkloadStatistics:
    """Summary statistics of a workload against a particular table."""

    num_queries: int
    num_query_types: int
    filtered_dimensions: tuple[str, ...]
    min_selectivity: float
    max_selectivity: float
    avg_selectivity: float

    def describe(self) -> str:
        """Human-readable one-line summary (used by the benchmark reports)."""
        return (
            f"{self.num_queries} queries, {self.num_query_types} types, "
            f"selectivity {self.min_selectivity:.4%}..{self.max_selectivity:.4%} "
            f"(avg {self.avg_selectivity:.4%})"
        )


class Workload:
    """An ordered collection of queries, optionally labelled by query type."""

    def __init__(self, queries: Sequence[Query], name: str = "workload") -> None:
        self.name = name
        self._queries = list(queries)

    # -- protocol -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def __getitem__(self, index: int) -> Query:
        return self._queries[index]

    def __repr__(self) -> str:
        return f"Workload(name={self.name!r}, queries={len(self)})"

    # -- accessors ---------------------------------------------------------------

    @property
    def queries(self) -> list[Query]:
        """The queries in workload order (a copy)."""
        return list(self._queries)

    def filtered_dimensions(self) -> tuple[str, ...]:
        """All dimensions filtered by at least one query, in first-seen order."""
        seen: dict[str, None] = {}
        for query in self._queries:
            for dim in query.filtered_dimensions:
                seen.setdefault(dim, None)
        return tuple(seen)

    def query_types(self) -> list[int]:
        """Distinct query-type labels present (unlabelled queries are ignored)."""
        labels = sorted({q.query_type for q in self._queries if q.query_type is not None})
        return labels

    def by_type(self) -> dict[int | None, list[Query]]:
        """Group queries by their query-type label."""
        groups: dict[int | None, list[Query]] = {}
        for query in self._queries:
            groups.setdefault(query.query_type, []).append(query)
        return groups

    def filter(self, keep: Callable[[Query], bool], name: str | None = None) -> "Workload":
        """Return a new workload containing only queries for which ``keep`` is true."""
        return Workload(
            [q for q in self._queries if keep(q)], name=name or f"{self.name}_filtered"
        )

    def sample(self, count: int, seed: SeedLike = None) -> "Workload":
        """Uniformly sample ``count`` queries without replacement."""
        rng = make_rng(seed)
        count = min(count, len(self._queries))
        chosen = rng.choice(len(self._queries), size=count, replace=False)
        return Workload(
            [self._queries[i] for i in sorted(chosen)], name=f"{self.name}_sample"
        )

    def split(self, fraction: float, seed: SeedLike = None) -> tuple["Workload", "Workload"]:
        """Randomly split into (train, test) workloads with ``fraction`` in train."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        rng = make_rng(seed)
        order = rng.permutation(len(self._queries))
        cut = max(1, int(round(fraction * len(self._queries))))
        train_ids = set(order[:cut].tolist())
        train = [q for i, q in enumerate(self._queries) if i in train_ids]
        test = [q for i, q in enumerate(self._queries) if i not in train_ids]
        return (
            Workload(train, name=f"{self.name}_train"),
            Workload(test, name=f"{self.name}_test"),
        )

    def extend(self, other: Iterable[Query]) -> "Workload":
        """Return a new workload with ``other``'s queries appended."""
        return Workload(self._queries + list(other), name=self.name)

    # -- statistics ---------------------------------------------------------------

    def statistics(self, table: Table, sample_rows: int = 50_000, seed: SeedLike = 7) -> WorkloadStatistics:
        """Compute Table-3 style statistics against ``table``.

        Selectivities are estimated on a row sample for large tables to keep
        the computation cheap; the sample size is generous relative to the
        selectivities involved (0.001%–10%).
        """
        if len(self._queries) == 0:
            return WorkloadStatistics(0, 0, (), 0.0, 0.0, 0.0)
        target = table
        if table.num_rows > sample_rows:
            target = table.sample_rows(sample_rows, make_rng(seed))
        selectivities = np.array(
            [query_selectivity(target, query) for query in self._queries]
        )
        types = {q.query_type for q in self._queries if q.query_type is not None}
        return WorkloadStatistics(
            num_queries=len(self._queries),
            num_query_types=len(types) if types else 1,
            filtered_dimensions=self.filtered_dimensions(),
            min_selectivity=float(selectivities.min()),
            max_selectivity=float(selectivities.max()),
            avg_selectivity=float(selectivities.mean()),
        )
