"""The d-dimensional range query used throughout the reproduction.

A :class:`Query` is a conjunction of per-dimension predicates (a hyper-
rectangle in data space) together with an aggregation (§2).  All bounds are
expressed in the storage domain (64-bit integers); helpers exist to construct
queries from user-facing values via the table's column encodings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.common.errors import QueryError
from repro.query.predicates import EqualityPredicate, Predicate, RangePredicate
from repro.storage.table import Table

AGGREGATES = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class Query:
    """A conjunctive range query with a single aggregation.

    Parameters
    ----------
    predicates:
        The per-dimension filters; at most one predicate per dimension.
    aggregate:
        One of :data:`AGGREGATES`; defaults to ``count`` as in the paper's
        evaluation (§6.2: "All queries perform a COUNT aggregation").
    aggregate_column:
        Column to aggregate over; required for non-count aggregates.
    query_type:
        Optional label identifying which query *type* (template) generated
        this query (§4.3.1); ``None`` when unknown.
    """

    predicates: tuple[Predicate, ...]
    aggregate: str = "count"
    aggregate_column: str | None = None
    query_type: int | None = None

    def __post_init__(self) -> None:
        if self.aggregate not in AGGREGATES:
            raise QueryError(f"unsupported aggregate {self.aggregate!r}")
        if self.aggregate != "count" and self.aggregate_column is None:
            raise QueryError(f"aggregate {self.aggregate!r} requires aggregate_column")
        dims = [p.dimension for p in self.predicates]
        if len(set(dims)) != len(dims):
            raise QueryError(f"query has duplicate predicates over dimensions {dims}")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_ranges(
        cls,
        ranges: Mapping[str, tuple[int, int]],
        aggregate: str = "count",
        aggregate_column: str | None = None,
        query_type: int | None = None,
    ) -> "Query":
        """Build a query from ``{dimension: (low, high)}`` storage-unit bounds."""
        predicates = []
        for dim, (low, high) in ranges.items():
            if low == high:
                predicates.append(EqualityPredicate(dim, int(low)))
            else:
                predicates.append(RangePredicate(dim, int(low), int(high)))
        return cls(
            predicates=tuple(predicates),
            aggregate=aggregate,
            aggregate_column=aggregate_column,
            query_type=query_type,
        )

    @classmethod
    def from_user_values(
        cls,
        table: Table,
        ranges: Mapping[str, tuple[object, object]],
        aggregate: str = "count",
        aggregate_column: str | None = None,
        query_type: int | None = None,
    ) -> "Query":
        """Build a query from user-facing bounds, converting via column encodings."""
        converted = {}
        for dim, (low, high) in ranges.items():
            column = table.column(dim)
            converted[dim] = (column.to_storage(low), column.to_storage(high))
        return cls.from_ranges(
            converted,
            aggregate=aggregate,
            aggregate_column=aggregate_column,
            query_type=query_type,
        )

    # -- accessors -------------------------------------------------------------

    @property
    def filtered_dimensions(self) -> tuple[str, ...]:
        """Names of the dimensions this query filters, in predicate order."""
        return tuple(p.dimension for p in self.predicates)

    @property
    def num_filtered_dimensions(self) -> int:
        """Number of dimensions with a filter predicate."""
        return len(self.predicates)

    def filters(self) -> dict[str, tuple[int, int]]:
        """Return ``{dimension: (low, high)}`` inclusive storage-unit bounds."""
        return {p.dimension: p.bounds for p in self.predicates}

    def predicate_for(self, dimension: str) -> Predicate | None:
        """Return this query's predicate over ``dimension``, if any."""
        for predicate in self.predicates:
            if predicate.dimension == dimension:
                return predicate
        return None

    def bounds_for(self, dimension: str, default: tuple[int, int]) -> tuple[int, int]:
        """Bounds over ``dimension``, falling back to ``default`` if unfiltered."""
        predicate = self.predicate_for(dimension)
        return predicate.bounds if predicate is not None else default

    def restricted_to(self, dimensions: Sequence[str]) -> "Query":
        """Return a copy keeping only predicates over ``dimensions``."""
        kept = tuple(p for p in self.predicates if p.dimension in set(dimensions))
        return Query(
            predicates=kept,
            aggregate=self.aggregate,
            aggregate_column=self.aggregate_column,
            query_type=self.query_type,
        )

    def with_type(self, query_type: int) -> "Query":
        """Return a copy of the query labelled with ``query_type``."""
        return Query(
            predicates=self.predicates,
            aggregate=self.aggregate,
            aggregate_column=self.aggregate_column,
            query_type=query_type,
        )

    def intersects_box(
        self, box: Mapping[str, tuple[int, int]]
    ) -> bool:
        """Whether this query's rectangle intersects an axis-aligned box.

        Dimensions missing from either side are treated as unbounded.
        """
        for predicate in self.predicates:
            if predicate.dimension not in box:
                continue
            low, high = box[predicate.dimension]
            if predicate.high < low or predicate.low > high:
                return False
        return True
