"""Selectivity estimation for queries and per-dimension filters.

Query-type clustering (§4.3.1) embeds each query as a vector of per-dimension
filter selectivities; the Augmented Grid optimizer initializes partition
counts proportionally to average per-dimension selectivity (§5.3.2).  Both use
the helpers in this module.

Selectivities can be computed exactly against a table or estimated against a
uniform sample; both paths share the same code since a sample is just a
smaller table.
"""

from __future__ import annotations

import numpy as np

from repro.query.query import Query
from repro.storage.table import Table


def dimension_selectivity(table: Table, dimension: str, low: int, high: int) -> float:
    """Fraction of rows whose value in ``dimension`` lies in ``[low, high]``."""
    if table.num_rows == 0:
        return 0.0
    values = table.values(dimension)
    matching = int(np.count_nonzero((values >= low) & (values <= high)))
    return matching / table.num_rows


def query_selectivity(table: Table, query: Query) -> float:
    """Fraction of rows matching *all* of the query's predicates."""
    if table.num_rows == 0:
        return 0.0
    mask = np.ones(table.num_rows, dtype=bool)
    for predicate in query.predicates:
        mask &= predicate.matches(table.values(predicate.dimension))
    return int(mask.sum()) / table.num_rows


def selectivity_vector(table: Table, query: Query) -> dict[str, float]:
    """Per-dimension selectivities of a query's predicates.

    This is the embedding used for query-type clustering: each filtered
    dimension maps to the selectivity of the query's filter over that
    dimension alone.
    """
    return {
        predicate.dimension: dimension_selectivity(
            table, predicate.dimension, predicate.low, predicate.high
        )
        for predicate in query.predicates
    }


def average_dimension_selectivity(
    table: Table, queries: list[Query], dimension: str
) -> float:
    """Average selectivity over ``dimension`` of the queries that filter it.

    Queries that do not filter ``dimension`` are treated as selecting the full
    domain (selectivity 1.0), mirroring how Flood and Tsunami reason about
    unfiltered dimensions when sizing partitions.
    """
    if not queries:
        return 1.0
    total = 0.0
    for query in queries:
        predicate = query.predicate_for(dimension)
        if predicate is None:
            total += 1.0
        else:
            total += dimension_selectivity(
                table, dimension, predicate.low, predicate.high
            )
    return total / len(queries)
