"""Workload profiling: per-dimension filter frequency, selectivity, and skew.

Before committing to an index layout it is useful to know *why* a particular
layout will help: which dimensions the workload actually filters, how
selective those filters are, and whether the query mass is spread uniformly
over a dimension's domain or concentrated in a hot region (the query skew of
§4.2.1).  Tsunami's optimizer consumes this information implicitly; this
module exposes it explicitly so users (and the CLI / examples) can inspect a
workload the same way the index does.

The skew number reported per dimension is exactly the paper's
``Skew_i(Q, a, b)`` over the dimension's full domain, computed per query type
and summed (§4.3.1), using the same 128-bin histogram discretization as the
Grid Tree's skew tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.query.query import Query
from repro.query.selectivity import dimension_selectivity
from repro.query.workload import Workload
from repro.stats.emd import earth_movers_distance, uniform_like
from repro.stats.histogram import query_histogram
from repro.storage.table import Table


@dataclass(frozen=True)
class DimensionProfile:
    """How one dimension is used by a workload."""

    dimension: str
    filter_frequency: float
    equality_fraction: float
    avg_selectivity: float
    skew: float

    def as_row(self) -> dict:
        """Flat representation for text tables."""
        return {
            "dimension": self.dimension,
            "filtered by": f"{self.filter_frequency:.0%} of queries",
            "equality filters": f"{self.equality_fraction:.0%}",
            "avg selectivity": f"{self.avg_selectivity:.3%}",
            "skew": round(self.skew, 3),
        }


@dataclass(frozen=True)
class WorkloadProfile:
    """A per-dimension breakdown of a workload against a table."""

    table_name: str
    num_queries: int
    num_query_types: int
    dimensions: tuple[DimensionProfile, ...]

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(
        cls,
        table: Table,
        workload: Workload,
        num_bins: int = 128,
        sample_rows: int = 50_000,
        seed: int = 7,
    ) -> "WorkloadProfile":
        """Profile ``workload`` against ``table``.

        Selectivities are estimated on a row sample of at most ``sample_rows``
        rows; skew uses the §4.2.1 histogram with ``num_bins`` bins per
        dimension and is summed over query types as in §4.3.1.
        """
        if len(workload) == 0:
            raise ValueError("cannot profile an empty workload")
        sample = table
        if table.num_rows > sample_rows:
            sample = table.sample_rows(sample_rows, np.random.default_rng(seed))

        types = workload.by_type()
        profiles = []
        for dimension in table.column_names:
            filtering = [q for q in workload if q.predicate_for(dimension) is not None]
            if not filtering:
                continue
            equality = sum(
                1 for q in filtering if q.predicate_for(dimension).width() == 1
            )
            selectivities = [
                dimension_selectivity(sample, dimension, *q.predicate_for(dimension).bounds)
                for q in filtering
            ]
            profiles.append(
                DimensionProfile(
                    dimension=dimension,
                    filter_frequency=len(filtering) / len(workload),
                    equality_fraction=equality / len(filtering),
                    avg_selectivity=float(np.mean(selectivities)),
                    skew=cls._dimension_skew(table, types, dimension, num_bins),
                )
            )
        profiles.sort(key=lambda profile: (-profile.filter_frequency, profile.dimension))
        return cls(
            table_name=table.name,
            num_queries=len(workload),
            num_query_types=len(types),
            dimensions=tuple(profiles),
        )

    @staticmethod
    def _dimension_skew(
        table: Table,
        types: dict[int | None, list[Query]],
        dimension: str,
        num_bins: int,
    ) -> float:
        """``Skew_i(Q, 0, X_i)`` summed over query types (§4.2.1, §4.3.1)."""
        low, high = table.bounds(dimension)
        domain_high = float(high) + 1.0
        total = 0.0
        for queries in types.values():
            intervals = [
                (float(q.predicate_for(dimension).low), float(q.predicate_for(dimension).high))
                for q in queries
                if q.predicate_for(dimension) is not None
            ]
            if not intervals:
                continue
            histogram = query_histogram(intervals, float(low), domain_high, num_bins=num_bins)
            total += earth_movers_distance(histogram.counts, uniform_like(histogram.counts))
        return total

    # -- reporting ----------------------------------------------------------------

    def profile_for(self, dimension: str) -> DimensionProfile | None:
        """The profile of one dimension, or ``None`` if no query filters it."""
        for profile in self.dimensions:
            if profile.dimension == dimension:
                return profile
        return None

    def ranked_dimensions(self) -> list[str]:
        """Dimensions ranked by how much index attention they deserve.

        The ranking mirrors the intuition behind Flood's and Tsunami's
        partition allocation: dimensions that are filtered often and with high
        selectivity (small selectivity value) come first.
        """
        def score(profile: DimensionProfile) -> float:
            return profile.filter_frequency * (1.0 - min(profile.avg_selectivity, 1.0))

        return [
            profile.dimension
            for profile in sorted(self.dimensions, key=score, reverse=True)
        ]

    def skewed_dimensions(self, threshold: float = 0.25) -> list[str]:
        """Dimensions whose per-type query skew exceeds ``threshold``.

        These are the dimensions the Grid Tree is most likely to split on
        (§4.3.2 picks the dimension with the largest skew reduction).
        """
        return [profile.dimension for profile in self.dimensions if profile.skew > threshold]

    def describe(self) -> str:
        """Multi-line text report (one row per filtered dimension)."""
        header = (
            f"workload over {self.table_name!r}: {self.num_queries} queries, "
            f"{self.num_query_types} types"
        )
        if not self.dimensions:
            return header + "\n(no dimension is filtered)"
        rows = [profile.as_row() for profile in self.dimensions]
        columns = list(rows[0].keys())
        widths = {
            column: max(len(column), *(len(str(row[column])) for row in rows))
            for column in columns
        }
        lines = [
            header,
            "  ".join(column.ljust(widths[column]) for column in columns),
            "  ".join("-" * widths[column] for column in columns),
        ]
        lines.extend(
            "  ".join(str(row[column]).ljust(widths[column]) for column in columns)
            for row in rows
        )
        return "\n".join(lines)


def profile_workload(
    table: Table, workload: Workload, num_bins: int = 128
) -> WorkloadProfile:
    """Convenience wrapper around :meth:`WorkloadProfile.build`."""
    return WorkloadProfile.build(table, workload, num_bins=num_bins)
