"""Query execution entry points.

:func:`execute_full_scan` is the reference execution without any index, used
as the ground-truth oracle in tests and as the implicit "no index" baseline:
every index's answer to every query must equal the full-scan answer.

:class:`QueryEngine` is the serving-path front door: it wraps a built index
(or falls back to full scans) and exposes both single-query execution and the
batched pipeline, which shares grid-tree routing, plan-cache lookups, column
gathers, and filter masks across the queries of one batch.

The engine accepts anything implementing the serving contract — ``is_built``,
``table``, ``execute``, ``execute_batch``, and ``explain`` — which every
:class:`~repro.baselines.base.ClusteredIndex` provides and which
:class:`~repro.core.delta.DeltaBufferedIndex` implements as a wrapper, so an
updatable index with pending inserts serves through the same batched fast
path as a read-only one.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import QueryError
from repro.query.query import Query
from repro.storage.scan import RowRange, ScanExecutor, ScanStats
from repro.storage.table import Table


def execute_full_scan(
    table: Table, query: Query, executor: ScanExecutor | None = None
) -> tuple[float, ScanStats]:
    """Answer ``query`` by scanning the entire table.

    Returns the aggregate value and the scan work counters, exactly as an
    index-backed execution would, so results are directly comparable.
    ``executor`` lets a caller that scans the same table repeatedly reuse
    one executor instead of allocating per call.
    """
    if executor is None:
        executor = ScanExecutor(table)
    full_range = [RowRange(0, table.num_rows, exact=False)]
    return executor.execute(
        full_range,
        query.filters(),
        aggregate=query.aggregate,
        aggregate_column=query.aggregate_column,
    )


class QueryEngine:
    """Executes queries through a built index, with a batched fast path.

    Parameters
    ----------
    index:
        A built index implementing the serving contract (any
        :class:`~repro.baselines.base.ClusteredIndex`, or the updatable
        :class:`~repro.core.delta.DeltaBufferedIndex` wrapper).  ``None``
        answers every query by full scan over ``table`` instead.
    table:
        Required when ``index`` is ``None``; ignored otherwise.
    """

    def __init__(self, index=None, table: Table | None = None) -> None:
        if index is None and table is None:
            raise QueryError("QueryEngine needs an index or a table")
        if index is not None and not index.is_built:
            raise QueryError(f"index {index.name!r} has not been built yet")
        self._index = index
        self._table = table
        # The index-less fallback scans the same (never re-clustered) table on
        # every query; one executor serves them all instead of allocating one
        # per run() call.
        self._scan_executor = ScanExecutor(table) if index is None else None

    @property
    def table(self) -> Table:
        """The table queries run against.

        Delegates to the index when one is present: an updatable index
        replaces its table object on merge, so caching it here would go
        stale after the first auto-merge.
        """
        return self._table if self._index is None else self._index.table

    def run(self, query: Query):
        """Answer one query; returns a ``QueryResult``."""
        from repro.baselines.base import QueryResult

        if self._index is not None:
            return self._index.execute(query)
        value, stats = execute_full_scan(self._table, query, self._scan_executor)
        return QueryResult(value=value, stats=stats)

    def run_batch(self, queries: Sequence[Query], batch_size: int | None = None):
        """Answer ``queries`` in batches, in input order.

        ``batch_size`` bounds how many queries share one executor batch (and
        therefore its slice/mask/result caches); ``None`` runs the whole
        sequence as a single batch.  Results are identical to calling
        :meth:`run` per query.
        """
        queries = list(queries)
        if batch_size is not None and batch_size < 1:
            raise QueryError(f"batch_size must be >= 1, got {batch_size}")
        if self._index is None:
            return [self.run(query) for query in queries]
        step = batch_size or max(len(queries), 1)
        results = []
        for start in range(0, len(queries), step):
            results.extend(self._index.execute_batch(queries[start : start + step]))
        return results

    def insert(self, row) -> None:
        """Insert one row through an updatable index (delta or sharded)."""
        self.insert_many([row])

    def insert_many(self, rows: Sequence) -> None:
        """Insert rows through an updatable index.

        Delegates to the wrapped index's vectorized ``insert_many`` (the
        delta buffer's columnar path, or the sharded router); raises
        :class:`QueryError` when the index — or the index-less full-scan
        fallback — does not support inserts.
        """
        insert = getattr(self._index, "insert_many", None)
        if insert is None:
            target = "full-scan fallback" if self._index is None else (
                f"index {self._index.name!r}"
            )
            raise QueryError(
                f"{target} does not support inserts; wrap it in a "
                "DeltaBufferedIndex or use updatable shards"
            )
        insert(rows)

    def close(self) -> None:
        """Release index resources (e.g. a sharded index's worker pool).

        Indexes without a ``close`` are left untouched; the engine itself
        remains usable.  Idempotent, and also available as a context manager.
        """
        close = getattr(self._index, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def explain(self, query: Query) -> dict:
        """Describe how ``query`` would be answered without executing it."""
        if self._index is not None:
            return self._index.explain(query)
        return {
            "index": "full-scan",
            "filtered_dimensions": list(query.filtered_dimensions),
            "aggregate": query.aggregate,
            "cell_ranges": 1,
            "rows_to_scan": self._table.num_rows,
            "exact_rows": 0,
            "table_fraction_scanned": 1.0,
        }
