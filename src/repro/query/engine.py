"""Reference query execution without any index (full scan).

Used as the ground-truth oracle in tests and as the implicit "no index"
baseline: every index's answer to every query must equal the full-scan answer.
"""

from __future__ import annotations

from repro.query.query import Query
from repro.storage.scan import RowRange, ScanExecutor, ScanStats
from repro.storage.table import Table


def execute_full_scan(table: Table, query: Query) -> tuple[float, ScanStats]:
    """Answer ``query`` by scanning the entire table.

    Returns the aggregate value and the scan work counters, exactly as an
    index-backed execution would, so results are directly comparable.
    """
    executor = ScanExecutor(table)
    full_range = [RowRange(0, table.num_rows, exact=False)]
    return executor.execute(
        full_range,
        query.filters(),
        aggregate=query.aggregate,
        aggregate_column=query.aggregate_column,
    )
