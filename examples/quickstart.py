"""Quickstart: build a Tsunami index over a small table and run range queries.

Run with::

    python examples/quickstart.py

The example builds a 100k-row table with one correlated column pair, creates a
skewed two-type query workload, optimizes a Tsunami index for it, and checks
the index's answers against full scans while reporting how much less data it
had to touch.
"""

from __future__ import annotations

import numpy as np

from repro import Query, Table, TsunamiIndex, Workload, execute_full_scan


def build_table(num_rows: int = 100_000, seed: int = 0) -> Table:
    """A sales-like table: uniform order dates, amounts correlated with quantity."""
    rng = np.random.default_rng(seed)
    order_date = rng.integers(0, 1_460, num_rows)  # four years of days
    quantity = rng.integers(1, 100, num_rows)
    amount = quantity * rng.integers(500, 1_500, num_rows)  # cents, correlated
    region = rng.integers(0, 20, num_rows)
    return Table.from_arrays(
        "sales",
        {"order_date": order_date, "quantity": quantity, "amount": amount, "region": region},
    )


def build_workload(table: Table, seed: int = 1) -> Workload:
    """Two query types: recent-date drill-downs and all-time big-order reports."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(100):
        start = int(rng.integers(1_200, 1_430))  # skewed towards recent dates
        queries.append(
            Query.from_ranges(
                {"order_date": (start, start + 30), "region": (0, 4)}, query_type=0
            )
        )
    for _ in range(100):
        low = int(rng.integers(80, 95))
        queries.append(Query.from_ranges({"quantity": (low, low + 5)}, query_type=1))
    return Workload(queries, name="sales_workload")


def main() -> None:
    table = build_table()
    workload = build_workload(table)
    print(f"table: {table.num_rows} rows x {table.num_dimensions} dimensions")
    print(f"workload: {workload.statistics(table).describe()}")

    index = TsunamiIndex()
    index.build(table, workload)
    stats = index.describe()
    print(
        f"built tsunami in {index.build_report.total_seconds:.2f}s: "
        f"{stats['num_leaf_regions']} regions, {stats['total_grid_cells']} cells, "
        f"{stats['size_bytes'] / 1024:.1f} KiB"
    )

    total_scanned = 0
    for query in list(workload)[:10]:
        result = index.execute(query)
        expected, _ = execute_full_scan(table, query)
        assert result.value == expected, "index answer must match the full scan"
        total_scanned += result.stats.points_scanned
        print(
            f"  {query.filters()} -> count={result.value:.0f} "
            f"(scanned {result.stats.points_scanned} of {table.num_rows} rows)"
        )
    print(f"average rows scanned per query: {total_scanned / 10:.0f}")


if __name__ == "__main__":
    main()
