"""Persistence: snapshot an optimized index to disk and load it back (§8).

Run with::

    python examples/index_persistence.py

Optimizing a Tsunami index takes the bulk of its build time (Fig. 9b).  This
example builds and optimizes an index once, saves the clustered table and the
optimized structure to a snapshot directory, and then loads the snapshot into
a fresh process-like state where queries run immediately — no re-optimization,
no re-sorting.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import TsunamiConfig, TsunamiIndex, execute_full_scan, load_index, save_index
from repro.datasets import load_dataset
from repro.storage.persistence import snapshot_info


def main() -> None:
    table, workload = load_dataset("stocks", num_rows=100_000, queries_per_type=40)

    start = time.perf_counter()
    index = TsunamiIndex(TsunamiConfig(optimizer_iterations=2)).build(table, workload)
    build_seconds = time.perf_counter() - start
    print(f"optimized and built tsunami in {build_seconds:.2f}s "
          f"({index.index_size_bytes() / 1024:.1f} KiB of index structure)")

    with tempfile.TemporaryDirectory() as snapshot_dir:
        path = Path(snapshot_dir) / "stocks_snapshot"
        save_index(index, path)
        info = snapshot_info(path)
        print(f"snapshot written to {path}")
        print(f"  table: {info['table']['num_rows']} rows, "
              f"{len(info['table']['columns'])} columns")
        print(f"  index: {info['index']['index_name']}, "
              f"{info['index']['index_size_bytes'] / 1024:.1f} KiB")

        start = time.perf_counter()
        restored = load_index(path)
        load_seconds = time.perf_counter() - start
        print(f"snapshot loaded in {load_seconds:.2f}s "
              f"({build_seconds / max(load_seconds, 1e-9):.0f}x faster than rebuilding)")

        for query in list(workload)[:5]:
            expected, _ = execute_full_scan(restored.table, query)
            result = restored.execute(query)
            assert result.value == expected
        print("restored index answers verified against full scans")


if __name__ == "__main__":
    main()
