"""Concurrent serving: many client threads, one micro-batched pipeline.

Run with::

    python examples/concurrent_serving.py

Everything below the serving contract is single-threaded; this example shows
the piece that turns concurrent clients into the batched calls the pipeline
is built for.  A :class:`~repro.serve.frontend.ServingFrontend` wraps a
:class:`~repro.core.lifecycle.LifecycleManager` over an updatable index, 16
client threads push a zipf-skewed query stream through it, and the front-end
coalesces their arrivals inside an adaptive micro-batching window (flush on
batch-size, arrival pause, or deadline, whichever first) while an LRU result
cache answers repeated templates without touching the engine.  Writes and
lifecycle maintenance (merge / re-optimize) invalidate the cache, so every
answer matches the full-scan oracle even while the index is being modified.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import (
    DeltaBufferedIndex,
    LifecycleConfig,
    LifecycleManager,
    ServingConfig,
    ServingFrontend,
    TsunamiConfig,
    TsunamiIndex,
    execute_full_scan,
)
from repro.datasets import load_dataset

NUM_CLIENTS = 16


def main() -> None:
    table, workload = load_dataset("taxi", num_rows=40_000, queries_per_type=30)
    index = DeltaBufferedIndex(
        lambda: TsunamiIndex(TsunamiConfig(optimizer_iterations=2)),
        merge_threshold=2_000,
    )
    index.build(table, workload)
    # A 1% pending fraction forces a pressure merge right after the insert
    # burst below, so the lifecycle loop's merge event (and the cache
    # invalidation it triggers) is part of the demo.
    backend = LifecycleManager(index, LifecycleConfig(merge_pressure=0.01))

    # A zipf-skewed stream over the workload's templates: a few hot queries
    # dominate, which is exactly what the result cache exploits.
    rng = np.random.default_rng(11)
    templates = list(workload)
    draws = rng.zipf(1.3, size=2_000) - 1
    stream = [templates[int(d) % len(templates)] for d in draws]

    config = ServingConfig(max_batch_size=128, max_delay_seconds=0.002)
    with ServingFrontend(backend, config) as frontend:
        # 16 closed-loop clients hammer the front-end concurrently.
        with ThreadPoolExecutor(NUM_CLIENTS) as clients:
            results = list(clients.map(frontend.query, stream))

        # Concurrent cached serving is bit-identical to the full-scan oracle.
        for query in set(stream[:50]):
            expected, _ = execute_full_scan(backend.index.table, query)
            assert frontend.query(query).value == expected
        print(f"served {len(results)} queries from {NUM_CLIENTS} client threads")

        stats = frontend.describe()
        print(
            f"micro-batching: {stats['batching']['batches']} batches, "
            f"mean size {stats['batching']['mean_batch_size']}, "
            f"largest {stats['batching']['largest_batch']}"
        )
        print(
            f"result cache: hit rate {stats['cache']['hit_rate']:.0%} "
            f"({stats['cache']['hits']} hits / {stats['cache']['misses']} misses)"
        )

        # Writes go through the same front door; every cached result is
        # dropped at insert time (pending delta rows are visible immediately),
        # and a lifecycle merge or re-optimization invalidates the same way.
        probe = stream[0]
        before = frontend.query(probe).value
        base = backend.index.table
        fresh_rows = []
        for _ in range(500):
            row = {
                name: base.column(name).to_user(
                    int(base.values(name)[int(rng.integers(0, base.num_rows))])
                )
                for name in base.column_names
            }
            fresh_rows.append(row)
        frontend.insert_many(fresh_rows)
        after = frontend.query(probe).value
        oracle, _ = execute_full_scan(backend.index.table, probe)
        assert after == oracle
        print(
            f"inserted {len(fresh_rows)} rows; probe answer {before} -> {after} "
            f"(cache invalidations: {frontend.stats.invalidations})"
        )
    print("front-end closed; admissions drained and backend released")


if __name__ == "__main__":
    main()
