"""Sustained inserts: a million-row stream absorbed by local merges.

Run with::

    python examples/sustained_inserts.py

PR 10 replaced the delta buffer's merge-and-rebuild with per-region
reorganization: a merge routes buffered rows to their owning Grid Tree
regions and re-sorts (or locally re-optimizes) only those regions, so
merge cost tracks the size of the write hotspot instead of the table.
This example streams one million localized inserts through a
``LifecycleManager`` loop and prints the updates/sec curve as the table
grows from 100k to over a million rows — the curve stays roughly flat,
where the legacy ``merge_strategy="rebuild"`` falls off as 1/n.
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    DeltaBufferedIndex,
    LifecycleConfig,
    LifecycleManager,
    Query,
    TsunamiConfig,
    TsunamiIndex,
    Workload,
)
from repro.storage.table import Table

BASE_ROWS = 100_000
TOTAL_INSERTS = 1_000_000
BATCH_ROWS = 10_000
DOMAIN = 1_000_000
HOTSPOT = (880_000, 940_000)


def make_table(num_rows: int, seed: int = 7) -> Table:
    rng = np.random.default_rng(seed)
    x = rng.integers(0, DOMAIN, num_rows)
    return Table.from_arrays(
        "stream",
        {
            "x": x,
            "y": x * 3 + rng.integers(-5_000, 5_001, num_rows),
            "z": rng.integers(0, 50_000, num_rows),
        },
    )


def make_workload(seed: int = 9, count: int = 32) -> Workload:
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        low = int(rng.integers(0, DOMAIN - 60_000))
        queries.append(
            Query.from_ranges(
                {"x": (low, low + 50_000), "z": (0, int(rng.integers(10_000, 50_000)))}
            )
        )
    return Workload(queries, name="sustained")


def hotspot_batch(rng: np.random.Generator, count: int) -> list[dict]:
    x = rng.integers(*HOTSPOT, count)
    y = x * 3 + rng.integers(-5_000, 5_001, count)
    z = rng.integers(0, 50_000, count)
    return [
        {"x": int(xi), "y": int(yi), "z": int(zi)} for xi, yi, zi in zip(x, y, z)
    ]


def main() -> None:
    index = DeltaBufferedIndex(
        lambda: TsunamiIndex(TsunamiConfig(optimizer_iterations=1)),
        merge_threshold=50_000,
        merge_strategy="local",
    )
    index.build(make_table(BASE_ROWS), make_workload())
    manager = LifecycleManager(index, LifecycleConfig(merge_pressure=0.05))

    hotspot_probe = Query.from_ranges({"x": HOTSPOT, "z": (0, 50_000)})
    rng = np.random.default_rng(13)
    print(f"built on {BASE_ROWS:,} rows; streaming {TOTAL_INSERTS:,} inserts")
    print(f"{'table rows':>12} {'updates/sec':>12} {'merges':>7} {'touched/total regions':>22}")

    inserted = 0
    window_start = time.perf_counter()
    window_rows = 0
    while inserted < TOTAL_INSERTS:
        manager.insert_many(hotspot_batch(rng, BATCH_ROWS))
        inserted += BATCH_ROWS
        window_rows += BATCH_ROWS
        if inserted % 100_000 == 0:
            elapsed = time.perf_counter() - window_start
            history = index.merge_history
            touched = sum(report.regions_touched or 0 for report in history)
            total = sum(report.regions_total or 0 for report in history)
            print(
                f"{index.num_rows:>12,} {window_rows / elapsed:>12,.0f} "
                f"{len(history):>7} {f'{touched}/{total}':>22}"
            )
            window_start = time.perf_counter()
            window_rows = 0

    result = index.execute(hotspot_probe)
    print(f"\nhotspot probe matches {result.stats.rows_matched:,} rows")
    report = manager.report()
    print(
        f"lifecycle: {report.rows_inserted:,} rows inserted, "
        f"{report.merges} merges ({report.local_merges} local), "
        f"{report.merge_regions_touched}/{report.merge_regions_total} "
        "regions touched across all merges"
    )


if __name__ == "__main__":
    main()
