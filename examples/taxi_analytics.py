"""Taxi analytics: compare Tsunami against Flood and non-learned indexes.

Run with::

    python examples/taxi_analytics.py [num_rows]

This is a miniature version of the paper's Fig. 7 on the Taxi stand-in
dataset: the same skewed six-type workload is executed through every index,
and the script prints query throughput, rows scanned, index size, and build
time for each.
"""

from __future__ import annotations

import sys

from repro.bench.harness import default_index_factories, run_comparison
from repro.bench.report import format_table, relative_factors
from repro.datasets import load_dataset


def main(num_rows: int = 80_000) -> None:
    table, workload = load_dataset("taxi", num_rows=num_rows, queries_per_type=50)
    print(f"taxi stand-in: {table.num_rows} rows, {len(workload)} queries")
    print(f"workload: {workload.statistics(table).describe()}\n")

    measurements = run_comparison(
        table, workload, default_index_factories(), dataset_name="taxi"
    )
    print(format_table([m.as_row() for m in measurements]))

    throughput = {m.index_name: m.queries_per_second for m in measurements}
    speedups = relative_factors(throughput, reference="flood")
    print("\nthroughput relative to Flood:")
    for name, factor in sorted(speedups.items(), key=lambda item: -item[1]):
        print(f"  {name:12s} {factor:5.2f}x")

    if not all(m.correct for m in measurements):
        raise SystemExit("some index returned a wrong answer — this is a bug")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 80_000)
