"""Correlated dimensions: how the Augmented Grid exploits correlation.

Run with::

    python examples/correlated_dimensions.py

Builds the synthetic correlated dataset of §6.5, then contrasts three ways of
indexing it over the same workload:

* Flood's independent grid,
* one Augmented Grid over the whole space (functional mappings + conditional
  CDFs enabled),
* the full Tsunami index (Grid Tree + Augmented Grids).

The interesting output is the average number of rows scanned per query and the
skeleton that the optimizer chose — on tightly correlated pairs you should see
functional mappings (``a->b``) and conditional CDFs (``a|b``) appear.
"""

from __future__ import annotations

from repro.baselines import FloodIndex
from repro.bench.report import format_table
from repro.core.tsunami import TsunamiIndex
from repro.core.variants import AugmentedGridOnlyIndex
from repro.datasets import make_correlated_dataset, synthetic_scaling_workload
from repro.query.engine import execute_full_scan


def main(num_rows: int = 60_000, num_dimensions: int = 8) -> None:
    table = make_correlated_dataset(num_rows=num_rows, num_dimensions=num_dimensions)
    workload = synthetic_scaling_workload(table, queries_per_type=50)
    print(
        f"correlated synthetic dataset: {table.num_rows} rows, "
        f"{table.num_dimensions} dimensions (half correlated with the other half)"
    )

    rows = []
    indexes = {
        "flood": FloodIndex(),
        "augmented-grid-only": AugmentedGridOnlyIndex(),
        "tsunami": TsunamiIndex(),
    }
    for name, index in indexes.items():
        index.build(table, workload)
        _, stats = index.execute_workload(workload)
        rows.append(
            {
                "index": name,
                "avg rows scanned": round(stats.points_scanned / len(workload), 1),
                "index size (KiB)": round(index.index_size_bytes() / 1024, 1),
                "build (s)": round(index.build_report.total_seconds, 2),
            }
        )
        if isinstance(index, AugmentedGridOnlyIndex):
            grid = index._regions[0].grid
            print(f"\naugmented grid skeleton chosen by the optimizer: [{grid.skeleton.describe()}]")

    print()
    print(format_table(rows))

    # Sanity check on a handful of queries.
    for query in list(workload)[:5]:
        expected, _ = execute_full_scan(table, query)
        assert indexes["tsunami"].execute(query).value == expected


if __name__ == "__main__":
    main()
