"""Insert support: a Tsunami index behind a delta buffer (§8 extension).

Run with::

    python examples/updatable_index.py

The paper's index is read-only; this example shows the delta-buffer extension
from §8 in action.  A Tsunami index is built over the taxi stand-in dataset,
new trips are inserted while queries keep running (and keep being correct),
and the buffer is eventually merged back into the clustered store.
"""

from __future__ import annotations

import numpy as np

from repro import DeltaBufferedIndex, TsunamiConfig, TsunamiIndex, execute_full_scan
from repro.datasets import load_dataset


def main() -> None:
    table, workload = load_dataset("taxi", num_rows=80_000, queries_per_type=40)
    index = DeltaBufferedIndex(
        lambda: TsunamiIndex(TsunamiConfig(optimizer_iterations=2)),
        merge_threshold=5_000,
    )
    index.build(table, workload)
    probe = list(workload)[0]
    print(f"built over {index.num_rows} trips; probe query answer: "
          f"{index.execute(probe).value:.0f}")

    # Simulate a stream of freshly ingested trips (user-facing values).
    rng = np.random.default_rng(42)
    base = index.base_index.table
    new_trips = []
    for _ in range(2_000):
        row = {
            name: base.column(name).to_user(
                int(base.values(name)[int(rng.integers(0, base.num_rows))])
            )
            for name in base.column_names
        }
        new_trips.append(row)
    index.insert_many(new_trips)
    print(f"inserted {len(new_trips)} trips; {index.num_pending} pending in the buffer")

    # Queries see the inserts immediately and stay exact.
    result = index.execute(probe)
    print(f"probe query now answers {result.value:.0f} "
          f"(scanned {result.stats.points_scanned} rows including the buffer)")

    report = index.merge()
    if report is not None:
        print(
            f"merged {report.rows_merged} rows in {report.rebuild_seconds:.2f}s; "
            f"main index now holds {report.total_rows} rows"
        )
    expected, _ = execute_full_scan(index.base_index.table, probe)
    assert index.execute(probe).value == expected
    print("post-merge answers still match the full scan")


if __name__ == "__main__":
    main()
