"""SQL interface: run the paper's query template (§2) as SQL text.

Run with::

    python examples/sql_interface.py

The example loads the TPC-H stand-in dataset, builds a Tsunami index, and
answers a handful of analytics questions written as SQL, comparing each answer
(and the rows scanned) against a plain full scan of the column store.
"""

from __future__ import annotations

from repro import TsunamiConfig, TsunamiIndex, execute_full_scan
from repro.datasets import load_dataset
from repro.query.sql import parse_query

# The TPC-H stand-in stores dates as day numbers (0..2556, i.e. 7 years),
# prices in cents, and discount/tax as whole percents; shipmode 0 is "AIR".
STATEMENTS = [
    # "How many shipments by air had below ten items?" (§6.2)
    "SELECT COUNT(*) FROM lineitem WHERE shipmode = 0 AND quantity < 10",
    # "How many high-priced orders in the past year used a significant discount?"
    "SELECT COUNT(*) FROM lineitem WHERE extendedprice >= 3000000 "
    "AND discount BETWEEN 5 AND 10 AND shipdate >= 2191",
    # Revenue-style aggregate over a price band.
    "SELECT SUM(quantity) FROM lineitem WHERE extendedprice BETWEEN 100000 AND 500000",
    # Average quantity of heavily taxed items.
    "SELECT AVG(quantity) FROM lineitem WHERE tax >= 6",
]


def main() -> None:
    table, workload = load_dataset("tpch", num_rows=120_000, queries_per_type=50)
    index = TsunamiIndex(TsunamiConfig(optimizer_iterations=2)).build(table, workload)
    print(
        f"built tsunami over {table.num_rows} TPC-H rows "
        f"({index.index_size_bytes() / 1024:.1f} KiB index)"
    )

    for sql in STATEMENTS:
        query = parse_query(sql, index.table)
        result = index.execute(query)
        expected, full_stats = execute_full_scan(index.table, query)
        assert result.value == expected, "SQL answer must match the full scan"
        print()
        print(sql)
        print(
            f"  -> {result.value:,.2f}   "
            f"(scanned {result.stats.points_scanned:,} rows vs "
            f"{full_stats.points_scanned:,} for a full scan)"
        )


if __name__ == "__main__":
    main()
