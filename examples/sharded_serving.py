"""Scale-out serving: a batch fanned across independently optimized shards.

Run with::

    python examples/sharded_serving.py

The ROADMAP's north star asks for one process to serve heavy traffic by
partitioning the data instead of growing one monolithic index.  This example
range-partitions the taxi stand-in dataset into four updatable shards, shows
per-shard bounding boxes pruning most shards for a localized query, streams a
skewed batch through ``QueryEngine`` with results identical to a full scan,
routes fresh inserts to their owning shards, and snapshots the whole sharded
index (per-shard subdirectories, pending inserts included) to disk.
"""

from __future__ import annotations

import tempfile
from functools import partial
from pathlib import Path

import numpy as np

from repro import (
    DeltaBufferedIndex,
    ShardedIndex,
    TsunamiIndex,
    execute_full_scan,
    load_index,
    save_index,
)
from repro.core.sharding import scaled_tsunami_config
from repro.datasets import load_dataset
from repro.query.engine import QueryEngine

NUM_SHARDS = 4


def main() -> None:
    table, workload = load_dataset("taxi", num_rows=60_000, queries_per_type=40)
    shard_config = scaled_tsunami_config(NUM_SHARDS)
    index = ShardedIndex(
        partial(
            DeltaBufferedIndex,
            partial(TsunamiIndex, shard_config),
            merge_threshold=50_000,
        ),
        num_shards=NUM_SHARDS,
        parallelism=NUM_SHARDS,
    )
    index.build(table, workload)
    info = index.describe()
    print(
        f"built {info['num_shards']} shards on {info['shard_dimension']!r} "
        f"(rows per shard: {info['rows_per_shard']})"
    )

    # A localized query only touches the shards whose bounding box it hits.
    probe = max(workload, key=index.shards_pruned)
    plan = index.explain(probe)
    print(
        f"probe plan: {plan['shards_pruned']}/{plan['num_shards']} shards pruned, "
        f"{plan['rows_to_scan']} rows to scan "
        f"({100 * plan['table_fraction_scanned']:.2f}% of the table)"
    )

    # A skewed batch through the engine, checked against the full-scan oracle.
    engine = QueryEngine(index=index)
    batch = [list(workload)[i % len(workload)] for i in range(512)]
    results = engine.run_batch(batch, batch_size=256)
    for query, result in zip(batch[:5], results[:5]):
        expected, _ = execute_full_scan(index.table, query)
        assert result.value == expected
    print(f"served {len(batch)} queries; spot-checked answers match the full scan")

    # Inserts route to the owning shard and stay visible to queries.
    rng = np.random.default_rng(7)
    base = index.table
    fresh_rows = []
    for _ in range(1_000):
        row = {
            name: base.column(name).to_user(
                int(base.values(name)[int(rng.integers(0, base.num_rows))])
            )
            for name in base.column_names
        }
        fresh_rows.append(row)
    index.insert_many(fresh_rows)
    print(
        f"inserted {len(fresh_rows)} rows; pending per shard: "
        f"{[shard.num_pending for shard in index.shards]}"
    )
    before = index.execute(probe).value

    # The whole sharded index (pending inserts included) snapshots to disk.
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "sharded_snapshot"
        save_index(index, target)
        shard_dirs = sorted(p.name for p in target.iterdir() if p.is_dir())
        loaded = load_index(target)
        print(f"snapshot holds {shard_dirs}; reloaded {loaded.num_pending} pending rows")
        assert loaded.execute(probe).value == before
    print("reloaded answers match the live index")


if __name__ == "__main__":
    main()
