"""Workload shift: Tsunami re-optimizes itself when the query mix changes.

Run with::

    python examples/workload_shift.py [num_rows]

Reproduces the scenario of Fig. 9a on the TPC-H stand-in: the index is
optimized for one workload, the workload is then replaced by five new query
types ("at midnight"), performance degrades on the stale layout, and a single
``reoptimize`` call restores it.
"""

from __future__ import annotations

import sys
import time

from repro import TsunamiIndex
from repro.datasets.tpch import make_tpch_dataset, tpch_shifted_templates, tpch_templates
from repro.datasets.workload_gen import generate_workload


def measure(index: TsunamiIndex, workload) -> tuple[float, float]:
    """Return (queries per second, average rows scanned) for ``workload``."""
    start = time.perf_counter()
    scanned = 0
    for query in workload:
        scanned += index.execute(query).stats.points_scanned
    elapsed = time.perf_counter() - start
    return len(workload) / elapsed, scanned / len(workload)


def main(num_rows: int = 80_000) -> None:
    table = make_tpch_dataset(num_rows=num_rows)
    original = generate_workload(table, tpch_templates(50), seed=1, name="original")
    shifted = generate_workload(table, tpch_shifted_templates(50), seed=2, name="shifted")

    index = TsunamiIndex()
    index.build(table, original)
    qps, scanned = measure(index, original)
    print(f"optimized for the original workload: {qps:8.1f} q/s, {scanned:8.0f} rows/query")

    qps, scanned = measure(index, shifted)
    print(f"after the workload shift (stale layout): {qps:8.1f} q/s, {scanned:8.0f} rows/query")

    seconds = index.reoptimize(shifted)
    qps, scanned = measure(index, shifted)
    print(
        f"after re-optimizing ({seconds:.1f}s, like Fig. 9a's ~4 minutes at 300M rows): "
        f"{qps:8.1f} q/s, {scanned:8.0f} rows/query"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 80_000)
